#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "phy/fft.h"
#include "phy/frame.h"
#include "phy/ofdm.h"

namespace geosphere::phy {
namespace {

// ---- FFT --------------------------------------------------------------------

CVector naive_dft(const CVector& x) {
  const std::size_t n = x.size();
  CVector out(n);
  for (std::size_t k = 0; k < n; ++k) {
    cf64 acc{};
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = -2.0 * kPi * static_cast<double>(k * t) / static_cast<double>(n);
      acc += x[t] * cf64{std::cos(angle), std::sin(angle)};
    }
    out[k] = acc;
  }
  return out;
}

class FftProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftProperty, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  Rng rng(n);
  CVector x(n);
  for (auto& v : x) v = rng.cgaussian();
  const CVector ref = naive_dft(x);
  const CVector got = fft_copy(x);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_LT(std::abs(got[i] - ref[i]), 1e-9 * static_cast<double>(n));
}

TEST_P(FftProperty, InverseRoundTrip) {
  const std::size_t n = GetParam();
  Rng rng(n + 100);
  CVector x(n);
  for (auto& v : x) v = rng.cgaussian();
  const CVector back = ifft_copy(fft_copy(x));
  for (std::size_t i = 0; i < n; ++i) EXPECT_LT(std::abs(back[i] - x[i]), 1e-10);
}

TEST_P(FftProperty, Parseval) {
  const std::size_t n = GetParam();
  Rng rng(n + 200);
  CVector x(n);
  for (auto& v : x) v = rng.cgaussian();
  const CVector freq = fft_copy(x);
  double time_energy = 0.0;
  double freq_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  for (const auto& v : freq) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy, time_energy * static_cast<double>(n),
              1e-7 * time_energy * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftProperty, ::testing::Values(1u, 2u, 8u, 64u, 256u));

TEST(Fft, RejectsNonPowerOfTwo) {
  CVector x(48);
  EXPECT_THROW(fft(x), std::invalid_argument);
}

// ---- OFDM --------------------------------------------------------------------

TEST(Ofdm, Ieee80211aLayout) {
  const auto p = OfdmParams::ieee80211a();
  EXPECT_EQ(p.num_data_subcarriers(), 48u);
  EXPECT_EQ(p.pilot_bins.size(), 4u);
  EXPECT_EQ(p.samples_per_symbol(), 80u);
  EXPECT_NEAR(p.symbol_duration_s(), 4e-6, 1e-12);
  // DC bin unused.
  for (const auto bin : p.data_bins) EXPECT_NE(bin, 0u);
}

TEST(Ofdm, ModulateDemodulateRoundTrip) {
  OfdmModem modem;
  Rng rng(1);
  CVector data(48);
  for (auto& v : data) v = rng.cgaussian();
  const CVector samples = modem.modulate(data);
  EXPECT_EQ(samples.size(), 80u);
  const CVector back = modem.demodulate(samples);
  for (std::size_t i = 0; i < 48; ++i) EXPECT_LT(std::abs(back[i] - data[i]), 1e-10);
}

TEST(Ofdm, CyclicPrefixIsTailCopy) {
  OfdmModem modem;
  Rng rng(2);
  CVector data(48);
  for (auto& v : data) v = rng.cgaussian();
  const CVector samples = modem.modulate(data);
  for (std::size_t i = 0; i < 16; ++i)
    EXPECT_EQ(samples[i], samples[64 + i]);  // CP = last 16 of the body.
}

TEST(Ofdm, CyclicPrefixAbsorbsMultipath) {
  // A two-tap channel within the CP: per-subcarrier equalization recovers
  // the data exactly -- the property that justifies per-subcarrier MIMO
  // detection in the link simulator.
  OfdmModem modem;
  Rng rng(3);
  CVector data(48);
  for (auto& v : data) v = rng.cgaussian();

  // Two OFDM symbols back-to-back so the echo of symbol 1 lands in symbol
  // 2's prefix region.
  const CVector s1 = modem.modulate(data);
  const CVector s2 = modem.modulate(data);
  CVector stream;
  stream.insert(stream.end(), s1.begin(), s1.end());
  stream.insert(stream.end(), s2.begin(), s2.end());

  const cf64 tap0{0.8, 0.1};
  const cf64 tap1{-0.3, 0.4};
  const std::size_t delay = 5;
  CVector received(stream.size(), cf64{});
  for (std::size_t i = 0; i < stream.size(); ++i) {
    received[i] += tap0 * stream[i];
    if (i >= delay) received[i] += tap1 * stream[i - delay];
  }

  // Demodulate the second symbol and equalize per subcarrier with the
  // channel's known frequency response.
  const CVector rx(received.begin() + 80, received.begin() + 160);
  const CVector demod = modem.demodulate(rx);
  const auto& p = modem.params();
  for (std::size_t i = 0; i < 48; ++i) {
    const double angle = -2.0 * kPi * static_cast<double>(p.data_bins[i] * delay) / 64.0;
    const cf64 hf = tap0 + tap1 * cf64{std::cos(angle), std::sin(angle)};
    EXPECT_LT(std::abs(demod[i] / hf - data[i]), 1e-9);
  }
}

TEST(Ofdm, RejectsWrongSizes) {
  OfdmModem modem;
  EXPECT_THROW(modem.modulate(CVector(47)), std::invalid_argument);
  EXPECT_THROW(modem.demodulate(CVector(79)), std::invalid_argument);
}

// ---- Frame codec ---------------------------------------------------------------

class FrameRoundTrip : public ::testing::TestWithParam<std::tuple<unsigned, coding::CodeRate>> {
};

TEST_P(FrameRoundTrip, CleanChannelRecoversPayload) {
  const auto [qam, rate] = GetParam();
  FrameConfig cfg;
  cfg.qam_order = qam;
  cfg.code_rate = rate;
  cfg.payload_bytes = 300;
  FrameCodec codec(cfg);
  Rng rng(qam);
  const BitVector payload = rng.bits(cfg.payload_bits());
  const EncodedFrame frame = codec.encode(payload);

  EXPECT_EQ(frame.ofdm_symbols, codec.ofdm_symbols_per_frame());
  EXPECT_EQ(frame.symbol_indices.size(), frame.ofdm_symbols * cfg.data_subcarriers);

  const BitVector decoded = codec.decode(frame.symbol_indices, frame.ofdm_symbols);
  EXPECT_EQ(decoded, payload);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, FrameRoundTrip,
    ::testing::Combine(::testing::Values(4u, 16u, 64u, 256u),
                       ::testing::Values(coding::CodeRate::kHalf,
                                         coding::CodeRate::kTwoThirds,
                                         coding::CodeRate::kThreeQuarters)));

TEST(FrameCodec, CorrectsSymbolErrors) {
  FrameConfig cfg;
  cfg.qam_order = 16;
  cfg.payload_bytes = 200;
  FrameCodec codec(cfg);
  Rng rng(5);
  const BitVector payload = rng.bits(cfg.payload_bits());
  EncodedFrame frame = codec.encode(payload);

  // Corrupt a few well-separated symbols: the interleaved convolutional
  // code must absorb them.
  for (std::size_t i = 0; i < frame.symbol_indices.size(); i += 300)
    frame.symbol_indices[i] ^= 1u;
  EXPECT_EQ(codec.decode(frame.symbol_indices, frame.ofdm_symbols), payload);
}

TEST(FrameCodec, SymbolCountScalesWithModulation) {
  FrameConfig cfg4;
  cfg4.qam_order = 4;
  cfg4.payload_bytes = 300;
  FrameConfig cfg64 = cfg4;
  cfg64.qam_order = 64;
  EXPECT_GT(FrameCodec(cfg4).ofdm_symbols_per_frame(),
            2 * FrameCodec(cfg64).ofdm_symbols_per_frame());
}

TEST(FrameCodec, HigherRatePuncturingShortensFrames) {
  FrameConfig half;
  half.qam_order = 16;
  half.payload_bytes = 400;
  FrameConfig three_quarters = half;
  three_quarters.code_rate = coding::CodeRate::kThreeQuarters;
  EXPECT_GT(FrameCodec(half).ofdm_symbols_per_frame(),
            FrameCodec(three_quarters).ofdm_symbols_per_frame());
}

TEST(FrameCodec, RejectsBadInputs) {
  FrameConfig cfg;
  FrameCodec codec(cfg);
  EXPECT_THROW(codec.encode(BitVector(7)), std::invalid_argument);
  EXPECT_THROW(codec.decode(std::vector<unsigned>(5), 1), std::invalid_argument);
}

}  // namespace
}  // namespace geosphere::phy

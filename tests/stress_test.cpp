// Stress and adversarial-input sweeps: poorly conditioned channels,
// degenerate enumeration geometries, and cross-constellation consistency.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "channel/kronecker.h"
#include "channel/rayleigh.h"
#include "common/db.h"
#include "common/rng.h"
#include "detect/spec.h"
#include "detect/ml_exhaustive.h"
#include "detect/sphere/enumerators.h"
#include "detect/sphere/sphere_decoder.h"
#include "link/link_simulator.h"
#include "test_util.h"

namespace geosphere {
namespace {

using geosphere::testing::hypothesis_distance_sq;
using geosphere::testing::random_channel;
using geosphere::testing::random_indices;
using geosphere::testing::transmit;

// ---- ML equivalence under severe conditioning -------------------------------

TEST(Stress, MlEquivalenceOnNearSingularChannels) {
  // rho = 0.95 Kronecker correlation: kappa^2 routinely above 30 dB --
  // exactly the regime where zero-forcing collapses and the search tree
  // gets deep. The sphere decoders must still return exact ML.
  const Constellation& c = Constellation::qam(16);
  channel::KroneckerChannel model(4, 3, 0.95, 0.95);
  MlExhaustiveDetector ml(c);
  const auto geo = sphere::make_geosphere(c);
  const auto eth = sphere::make_eth_sd(c);

  Rng rng(1);
  const double n0 = db_to_lin(-8.0);  // Low SNR: wide searches.
  for (int trial = 0; trial < 25; ++trial) {
    const auto h = model.draw_flat(rng);
    const auto sent = random_indices(rng, c, 3);
    const auto y = transmit(rng, h, c, sent, n0);
    ml.detect(y, h, n0);
    for (Detector* d : {geo.get(), eth.get()}) {
      const auto r = d->detect(y, h, n0);
      EXPECT_NEAR(hypothesis_distance_sq(y, h, c, r.indices), ml.last_distance_sq(),
                  1e-9 * (1.0 + ml.last_distance_sq()))
          << d->name() << " trial " << trial;
    }
  }
}

TEST(Stress, MlEquivalenceWithExtremePowerImbalance) {
  // One stream 30 dB weaker than the other: column-norm imbalance stresses
  // both the QR and the budget arithmetic.
  const Constellation& c = Constellation::qam(16);
  MlExhaustiveDetector ml(c);
  const auto geo = sphere::make_geosphere(c);
  Rng rng(2);
  const double n0 = db_to_lin(-15.0);
  for (int trial = 0; trial < 25; ++trial) {
    auto h = random_channel(rng, 4, 2);
    for (std::size_t i = 0; i < 4; ++i) h(i, 1) *= 0.0316;  // -30 dB.
    const auto sent = random_indices(rng, c, 2);
    const auto y = transmit(rng, h, c, sent, n0);
    ml.detect(y, h, n0);
    const auto r = geo->detect(y, h, n0);
    EXPECT_NEAR(hypothesis_distance_sq(y, h, c, r.indices), ml.last_distance_sq(),
                1e-9 * (1.0 + ml.last_distance_sq()));
  }
}

// ---- Adversarial enumeration geometries --------------------------------------

constexpr double kInf = std::numeric_limits<double>::infinity();

void expect_full_sorted_drain(sphere::GeoEnumerator& e, const Constellation& c,
                              cf64 center) {
  DetectionStats stats;
  e.reset(center, stats);
  std::set<std::pair<int, int>> seen;
  double prev = -1.0;
  while (const auto child = e.next(kInf, stats)) {
    EXPECT_TRUE(seen.emplace(child->li, child->lq).second);
    EXPECT_GE(child->cost_grid, prev - 1e-9);
    prev = child->cost_grid;
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(c.order())) << "center=" << center;
}

TEST(Stress, EnumerationAtDegenerateCenters) {
  for (const unsigned order : {4u, 16u, 64u, 256u}) {
    const Constellation& c = Constellation::qam(order);
    sphere::GeoEnumerator e({.geometric_pruning = true});
    e.attach(c);
    const double edge = static_cast<double>(c.pam_levels() - 1);

    // Exactly on a constellation point, on decision boundaries (ties), at
    // corners, and absurdly far outside.
    for (const cf64 center :
         {cf64{1.0, 1.0}, cf64{0.0, 0.0}, cf64{2.0, 0.0}, cf64{edge, edge},
          cf64{-edge - 40.0, edge + 40.0}, cf64{1e6, -1e6}, cf64{0.0, -2.0}}) {
      expect_full_sorted_drain(e, c, center);
    }
  }
}

TEST(Stress, SphereDecoderWithReceivedVectorFarOutside) {
  // y scaled far beyond any lattice point: slicing clamps everywhere but
  // the decoder must still return the (unique) nearest corner.
  const Constellation& c = Constellation::qam(16);
  const auto geo = sphere::make_geosphere(c);
  MlExhaustiveDetector ml(c);
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const auto h = random_channel(rng, 3, 2);
    CVector y(3);
    for (auto& v : y) v = 50.0 * rng.cgaussian();
    const auto r = geo->detect(y, h, 1.0);
    ml.detect(y, h, 1.0);
    EXPECT_NEAR(hypothesis_distance_sq(y, h, c, r.indices), ml.last_distance_sq(),
                1e-7 * (1.0 + ml.last_distance_sq()));
  }
}

TEST(Stress, ZeroReceivedVector) {
  const Constellation& c = Constellation::qam(64);
  const auto geo = sphere::make_geosphere(c);
  Rng rng(4);
  const auto h = random_channel(rng, 4, 4);
  const auto r = geo->detect(CVector(4, cf64{}), h, 0.1);
  EXPECT_EQ(r.indices.size(), 4u);  // Valid decision, no crash.
}

// ---- Cross-constellation link consistency -------------------------------------

TEST(Stress, FerOrderedByConstellationDensity) {
  // At a fixed SNR, denser constellations must not have lower FER.
  channel::RayleighChannel ch(4, 2);
  double prev_fer = -1.0;
  for (const unsigned qam : {4u, 16u, 64u}) {
    link::LinkScenario scenario;
    scenario.frame.qam_order = qam;
    scenario.frame.payload_bytes = 100;
    scenario.snr_db = 12.0;
    link::LinkSimulator sim(ch, scenario);
    const auto det = DetectorSpec::parse("geosphere").create(Constellation::qam(qam));
    const double fer = sim.run(*det, DecisionMode::kHard, 40, /*seed=*/5).fer();
    EXPECT_GE(fer, prev_fer - 0.05) << "QAM" << qam;
    prev_fer = fer;
  }
  EXPECT_GT(prev_fer, 0.1);  // 64-QAM at 12 dB on 2x4 genuinely struggles.
}

TEST(Stress, DetectionStatsAccumulate) {
  DetectionStats a;
  a.ped_computations = 5;
  a.visited_nodes = 2;
  a.lb_lookups = 7;
  DetectionStats b;
  b.ped_computations = 3;
  b.lb_prunes = 4;
  b.queue_ops = 9;
  a += b;
  EXPECT_EQ(a.ped_computations, 8u);
  EXPECT_EQ(a.visited_nodes, 2u);
  EXPECT_EQ(a.lb_lookups, 7u);
  EXPECT_EQ(a.lb_prunes, 4u);
  EXPECT_EQ(a.queue_ops, 9u);
}

TEST(Stress, RepeatedDetectCallsAreIndependent) {
  // Workspace reuse across calls (including changing nc) must not leak
  // state between detections.
  const Constellation& c = Constellation::qam(16);
  const auto geo = sphere::make_geosphere(c);
  Rng rng(6);
  const double n0 = db_to_lin(-20.0);

  const auto h2 = random_channel(rng, 4, 2);
  const auto s2 = random_indices(rng, c, 2);
  const auto y2 = transmit(rng, h2, c, s2, n0);
  const auto first = geo->detect(y2, h2, n0);

  // Different size in between.
  const auto h4 = random_channel(rng, 4, 4);
  const auto s4 = random_indices(rng, c, 4);
  const auto y4 = transmit(rng, h4, c, s4, n0);
  (void)geo->detect(y4, h4, n0);

  const auto again = geo->detect(y2, h2, n0);
  EXPECT_EQ(again.indices, first.indices);
  EXPECT_EQ(again.stats.ped_computations, first.stats.ped_computations);
  EXPECT_EQ(again.stats.visited_nodes, first.stats.visited_nodes);
}

TEST(Stress, AllDetectorsHandleSingleAntennaSingleStream) {
  const Constellation& c = Constellation::qam(16);
  Rng rng(7);
  const auto h = random_channel(rng, 1, 1);
  const auto sent = random_indices(rng, c, 1);
  const auto y = transmit(rng, h, c, sent, 0.0);

  for (const char* name :
       {"zf", "mmse", "mmse-sic", "geosphere", "geosphere-2dzz", "geosphere-sqrd",
        "eth-sd", "shabany", "rvd", "fsd", "kbest:4", "soft-geosphere"}) {
    const auto det = DetectorSpec::parse(name).create(c);
    EXPECT_EQ(det->detect(y, h, 1e-12).indices, sent) << det->name();
  }
}

}  // namespace
}  // namespace geosphere

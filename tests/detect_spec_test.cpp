// Tests for the DetectorSpec parser and registry: the single surface
// through which the CLI, SweepSpec and the engine name detectors. Parsing
// is strict -- malformed parameters must fail loudly with a message that
// names the valid forms, never silently configure a different detector.
#include "detect/spec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "detect/soft_output.h"

namespace geosphere {
namespace {

::testing::AssertionResult parse_fails_mentioning(const std::string& text,
                                                const std::string& fragment) {
  try {
    (void)DetectorSpec::parse(text);
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    if (what.find(fragment) == std::string::npos)
      return ::testing::AssertionFailure()
             << "\"" << text << "\" failed but message lacks \"" << fragment
             << "\": " << what;
    if (what.find("valid forms:") == std::string::npos)
      return ::testing::AssertionFailure()
             << "\"" << text << "\" error does not list the valid forms: " << what;
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure() << "\"" << text << "\" parsed but should not";
}

TEST(DetectorSpec, ParsesPlainNames) {
  const DetectorSpec geo = DetectorSpec::parse("geosphere");
  EXPECT_EQ(geo.base(), "geosphere");
  EXPECT_EQ(geo.text(), "geosphere");
  EXPECT_EQ(geo.decision(), DecisionMode::kHard);
  EXPECT_FALSE(geo.soft_capable());
  EXPECT_NE(geo.create(Constellation::qam(16)), nullptr);
}

TEST(DetectorSpec, ParsesKbestParameter) {
  const DetectorSpec kb = DetectorSpec::parse("kbest:8");
  EXPECT_EQ(kb.base(), "kbest");
  EXPECT_EQ(kb.text(), "kbest:8");
  EXPECT_EQ(kb.param(), 8u);
  const auto det = kb.create(Constellation::qam(16));
  ASSERT_NE(det, nullptr);
  EXPECT_NE(det->name().find("8"), std::string::npos);
}

TEST(DetectorSpec, RejectsMalformedParameters) {
  // The satellite's hardening checklist: zero, non-numeric, trailing
  // garbage, missing, forbidden and out-of-range parameters.
  EXPECT_TRUE(parse_fails_mentioning("kbest:0", "[1, 4096]"));
  EXPECT_TRUE(parse_fails_mentioning("kbest:8x", "[1, 4096]"));
  EXPECT_TRUE(parse_fails_mentioning("kbest:x8", "[1, 4096]"));
  EXPECT_TRUE(parse_fails_mentioning("kbest:", "[1, 4096]"));
  EXPECT_TRUE(parse_fails_mentioning("kbest:-1", "[1, 4096]"));
  EXPECT_TRUE(parse_fails_mentioning("kbest:4097", "[1, 4096]"));
  EXPECT_TRUE(parse_fails_mentioning("kbest:99999999999999999999", "[1, 4096]"));
  EXPECT_TRUE(parse_fails_mentioning("kbest:8:8", "[1, 4096]"));
  EXPECT_TRUE(parse_fails_mentioning("kbest", "kbest:K"));
  EXPECT_TRUE(parse_fails_mentioning("zf:4", "takes no parameter"));
  EXPECT_TRUE(parse_fails_mentioning("does-not-exist", "unknown detector"));
  EXPECT_TRUE(parse_fails_mentioning("", "unknown detector"));
  EXPECT_TRUE(parse_fails_mentioning(":8", "unknown detector"));
  EXPECT_TRUE(parse_fails_mentioning("GEOSPHERE", "unknown detector"));
}

TEST(DetectorSpec, SoftGeosphereIsARegistryDetector) {
  const DetectorSpec spec = DetectorSpec::parse("soft-geosphere");
  EXPECT_EQ(spec.decision(), DecisionMode::kSoft);
  EXPECT_TRUE(spec.soft_capable());
  EXPECT_TRUE(spec.supports(DecisionMode::kHard));
  EXPECT_TRUE(spec.supports(DecisionMode::kSoft));

  const auto det = spec.create(Constellation::qam(16));
  ASSERT_NE(det, nullptr);
  EXPECT_EQ(det->name(), "soft-geosphere");
  ASSERT_NE(det->soft(), nullptr);
  // The default LLR clamp matches the optional-parameter default.
  const auto* soft = dynamic_cast<SoftGeosphereDetector*>(det.get());
  ASSERT_NE(soft, nullptr);
  EXPECT_DOUBLE_EQ(soft->llr_clamp(), 30.0);
}

TEST(DetectorSpec, SoftGeosphereOptionalClampParameter) {
  // An omitted optional parameter is the same configuration as its
  // explicit default: one canonical text, equal specs (and therefore one
  // per-worker cache entry in the engine).
  EXPECT_EQ(DetectorSpec::parse("soft-geosphere").text(), "soft-geosphere:30");
  EXPECT_TRUE(DetectorSpec::parse("soft-geosphere") ==
              DetectorSpec::parse("soft-geosphere:30"));

  const DetectorSpec spec = DetectorSpec::parse("soft-geosphere:50");
  EXPECT_EQ(spec.text(), "soft-geosphere:50");
  const auto det = spec.create(Constellation::qam(4));
  const auto* soft = dynamic_cast<SoftGeosphereDetector*>(det.get());
  ASSERT_NE(soft, nullptr);
  EXPECT_DOUBLE_EQ(soft->llr_clamp(), 50.0);
  EXPECT_TRUE(parse_fails_mentioning("soft-geosphere:0", "[1, 1000]"));
  EXPECT_TRUE(parse_fails_mentioning("soft-geosphere:30dB", "[1, 1000]"));
}

TEST(DetectorSpec, WithDecisionValidatesCapability) {
  const DetectorSpec zf = DetectorSpec::parse("zf");
  EXPECT_THROW(zf.with_decision(DecisionMode::kSoft), std::invalid_argument);
  EXPECT_EQ(zf.with_decision(DecisionMode::kHard).decision(), DecisionMode::kHard);

  const DetectorSpec soft = DetectorSpec::parse("soft-geosphere");
  const DetectorSpec hardened = soft.with_decision(DecisionMode::kHard);
  EXPECT_EQ(hardened.decision(), DecisionMode::kHard);
  EXPECT_EQ(hardened.text(), soft.text());  // Same instance configuration.
  EXPECT_FALSE(hardened == soft);           // Different run mode.
}

TEST(DetectorSpec, RegistryListsEveryDetectorOnce) {
  const auto& registry = detector_registry();
  EXPECT_GE(registry.size(), 12u);
  for (std::size_t i = 0; i < registry.size(); ++i)
    for (std::size_t j = i + 1; j < registry.size(); ++j)
      EXPECT_NE(registry[i].name, registry[j].name);
  // Every non-required-param entry also appears in detector_names().
  const auto& names = detector_names();
  for (const auto& info : registry) {
    const bool listed =
        std::find(names.begin(), names.end(), info.name) != names.end();
    EXPECT_EQ(listed, !info.param_required) << info.name;
  }
}

}  // namespace
}  // namespace geosphere

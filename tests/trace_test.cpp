#include "channel/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "channel/rayleigh.h"
#include "channel/testbed_ensemble.h"

namespace geosphere::channel {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Trace, SaveLoadRoundTrip) {
  RayleighChannel model(4, 2);
  Rng rng(1);
  const auto links = record_trace(model, 7, 12, rng);
  const std::string path = temp_path("geo_trace_roundtrip.bin");
  save_trace(path, links);
  const auto loaded = load_trace(path);

  ASSERT_EQ(loaded.size(), links.size());
  for (std::size_t l = 0; l < links.size(); ++l) {
    ASSERT_EQ(loaded[l].num_subcarriers(), 12u);
    for (std::size_t f = 0; f < 12; ++f)
      for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 2; ++j)
          EXPECT_EQ(loaded[l].subcarriers[f](i, j), links[l].subcarriers[f](i, j));
  }
  std::remove(path.c_str());
}

TEST(Trace, ReplayIsDeterministicPerSeed) {
  TestbedConfig tc;
  tc.clients = 2;
  tc.ap_antennas = 2;
  TestbedEnsemble ensemble(tc);
  Rng rec_rng(2);
  TraceChannelModel trace(record_trace(ensemble, 10, 8, rec_rng));
  EXPECT_EQ(trace.num_rx(), 2u);
  EXPECT_EQ(trace.num_tx(), 2u);
  EXPECT_EQ(trace.num_links(), 10u);

  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 20; ++i) {
    const Link la = trace.draw_link(a, 8);
    const Link lb = trace.draw_link(b, 8);
    for (std::size_t f = 0; f < 8; ++f)
      EXPECT_EQ(la.subcarriers[f](0, 0), lb.subcarriers[f](0, 0));
  }
}

TEST(Trace, SubcarrierTruncation) {
  RayleighChannel model(2, 2);
  Rng rng(3);
  TraceChannelModel trace(record_trace(model, 3, 16, rng));
  Rng draw(1);
  EXPECT_EQ(trace.draw_link(draw, 4).num_subcarriers(), 4u);
  EXPECT_THROW(trace.draw_link(draw, 17), std::invalid_argument);
}

TEST(Trace, RejectsBadInputs) {
  EXPECT_THROW(save_trace(temp_path("x.bin"), {}), std::invalid_argument);
  EXPECT_THROW(TraceChannelModel(std::vector<Link>{}), std::invalid_argument);
  EXPECT_THROW(load_trace(temp_path("geo_trace_nonexistent.bin")), std::runtime_error);

  // Garbage file: wrong magic.
  const std::string bad = temp_path("geo_trace_bad.bin");
  {
    std::ofstream os(bad, std::ios::binary);
    os << "NOTATRACEFILE____________";
  }
  EXPECT_THROW(load_trace(bad), std::runtime_error);
  std::remove(bad.c_str());
}

TEST(Trace, RejectsTruncatedFile) {
  RayleighChannel model(2, 2);
  Rng rng(4);
  const auto links = record_trace(model, 4, 8, rng);
  const std::string path = temp_path("geo_trace_trunc.bin");
  save_trace(path, links);
  // Chop the file in half.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_THROW(load_trace(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Trace, RejectsInhomogeneousLinks) {
  RayleighChannel big(4, 2);
  RayleighChannel small(2, 2);
  Rng rng(5);
  auto links = record_trace(big, 2, 8, rng);
  links.push_back(small.draw_link(rng, 8));
  EXPECT_THROW(save_trace(temp_path("geo_trace_mixed.bin"), links),
               std::invalid_argument);
}

}  // namespace
}  // namespace geosphere::channel

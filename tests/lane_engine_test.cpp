// Tests for the SoA/SIMD tree-search kernel layer (src/detect/sphere/simd/):
//  * kernel registry sanity: scalar first, widths ascending, every op
//    populated, supported kernels are a subset of compiled kernels,
//  * per-op bit-exactness of every SIMD tier against the scalar reference,
//    including the odd-count tails each tier falls back to scalar for,
//  * batched rotation (rotate_transpose / packed_root_centers) bit-identity
//    with the per-vector linalg products on every tier,
//  * full-detector lane parity: for every tree-search detector x QAM
//    {16, 64, 256} x batch sizes {1, W-1, W, 48}, solve_batch under every
//    supported kernel tier -- both the default sequential lane policy and
//    forced lockstep lanes -- is bit-identical (decisions, LLRs, stats
//    counters) to a per-vector loop on the scalar reference build,
//  * the zigzag/enumerator edge cases the lane masks must preserve:
//    boundary-sideways steps at constellation edges, radius-prune on the
//    first candidate, 1-stream degenerate trees, and partial batches
//    smaller than the lane count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/db.h"
#include "common/rng.h"
#include "detect/spec.h"
#include "detect/sphere/enumerators.h"
#include "detect/sphere/simd/dispatch.h"
#include "detect/sphere/simd/kernel.h"
#include "detect/sphere/simd/rotate.h"
#include "linalg/matrix.h"
#include "test_util.h"

namespace geosphere {
namespace {

using geosphere::testing::hypothesis_distance_sq;
using geosphere::testing::random_channel;
using geosphere::testing::random_indices;
using geosphere::testing::transmit;
namespace simd = geosphere::sphere::simd;

/// RAII kernel-tier override (restores env/auto selection on scope exit).
struct KernelGuard {
  explicit KernelGuard(const char* name) { simd::set_kernel_override(name); }
  ~KernelGuard() { simd::set_kernel_override(nullptr); }
};

/// RAII tree-lane-count override (restores the default policy on exit).
struct LaneGuard {
  explicit LaneGuard(std::size_t lanes) { simd::set_lane_override(lanes); }
  ~LaneGuard() { simd::set_lane_override(0); }
};

void expect_same_stats(const DetectionStats& a, const DetectionStats& b,
                       const std::string& who) {
  EXPECT_EQ(a.ped_computations, b.ped_computations) << who;
  EXPECT_EQ(a.visited_nodes, b.visited_nodes) << who;
  EXPECT_EQ(a.lb_lookups, b.lb_lookups) << who;
  EXPECT_EQ(a.lb_prunes, b.lb_prunes) << who;
  EXPECT_EQ(a.slicer_ops, b.slicer_ops) << who;
  EXPECT_EQ(a.queue_ops, b.queue_ops) << who;
}

/// Bitwise equality for double sequences: the parity contract is "same
/// bits", not "close enough", so compare representations, not values.
void expect_bits_equal(const std::vector<double>& a, const std::vector<double>& b,
                       const std::string& who) {
  ASSERT_EQ(a.size(), b.size()) << who;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t ba = 0, bb = 0;
    std::memcpy(&ba, &a[i], sizeof ba);
    std::memcpy(&bb, &b[i], sizeof bb);
    EXPECT_EQ(ba, bb) << who << " element " << i << " (" << a[i] << " vs " << b[i] << ")";
  }
}

// ------------------------------------------------------------- registry --

TEST(KernelRegistry, ScalarFirstWidthsAscendingAllOpsPopulated) {
  const auto compiled = simd::compiled_kernels();
  ASSERT_FALSE(compiled.empty());
  EXPECT_STREQ(compiled.front()->name, "scalar");
  EXPECT_EQ(compiled.front()->width, 1u);
  for (std::size_t i = 1; i < compiled.size(); ++i)
    EXPECT_GT(compiled[i]->width, compiled[i - 1]->width);

  const auto supported = simd::supported_kernels();
  ASSERT_FALSE(supported.empty());
  EXPECT_EQ(supported.front(), compiled.front());  // Scalar always runs.
  for (const simd::Kernel* k : supported) {
    EXPECT_NE(std::find(compiled.begin(), compiled.end(), k), compiled.end()) << k->name;
    EXPECT_NE(k->quotients, nullptr) << k->name;
    EXPECT_NE(k->ped_costs, nullptr) << k->name;
    EXPECT_NE(k->center_accum, nullptr) << k->name;
    EXPECT_NE(k->pd_update, nullptr) << k->name;
    EXPECT_NE(k->cmul_accum, nullptr) << k->name;
  }

  // active_kernel() honors the override for every supported tier.
  for (const simd::Kernel* k : supported) {
    KernelGuard guard(k->name);
    EXPECT_STREQ(simd::active_kernel().name, k->name);
  }
  EXPECT_THROW(simd::set_kernel_override("avx1024"), std::invalid_argument);
}

TEST(KernelRegistry, LaneOverrideClampsToValidRange) {
  {
    LaneGuard guard(1);
    EXPECT_EQ(simd::tree_lane_count(simd::active_kernel().width), 1u);
  }
  {
    LaneGuard guard(simd::kMaxLanes + 100);
    EXPECT_LE(simd::tree_lane_count(simd::active_kernel().width), simd::kMaxLanes);
  }
  // Default policy restored after the guards.
  EXPECT_GE(simd::tree_lane_count(simd::active_kernel().width), 1u);
}

// ----------------------------------------------------------- kernel ops --

/// Sizes that exercise full SIMD registers plus every tail length.
const std::size_t kOpSizes[] = {1, 2, 3, 4, 5, 7, 8, 13, 16, 33};

std::vector<double> random_doubles(Rng& rng, std::size_t n, double lo, double hi) {
  std::vector<double> v(n);
  for (double& x : v) x = lo + (hi - lo) * rng.uniform();
  return v;
}

TEST(KernelOps, EveryTierBitIdenticalToScalarIncludingTails) {
  const simd::Kernel& ref = simd::scalar_kernel();
  Rng rng(4242);
  for (const std::size_t n : kOpSizes) {
    const auto num = random_doubles(rng, n, -10.0, 10.0);
    const auto den = random_doubles(rng, n, 0.1, 4.0);
    const auto dx = random_doubles(rng, n, -7.0, 7.0);
    const auto dy = random_doubles(rng, n, -7.0, 7.0);
    const auto base = random_doubles(rng, n, 0.0, 50.0);
    const auto scale = random_doubles(rng, n, 0.0, 3.0);
    const auto s_re = random_doubles(rng, n, -7.0, 7.0);
    const auto s_im = random_doubles(rng, n, -7.0, 7.0);
    const auto inter = random_doubles(rng, 2 * n, -5.0, 5.0);  // Interleaved complex.
    const double r_re = rng.uniform() - 0.5, r_im = rng.uniform() - 0.5;
    const double a_re = rng.uniform() - 0.5, a_im = rng.uniform() - 0.5;
    const auto acc0_re = random_doubles(rng, n, -2.0, 2.0);
    const auto acc0_im = random_doubles(rng, n, -2.0, 2.0);
    const auto acc0_c = random_doubles(rng, 2 * n, -2.0, 2.0);

    std::vector<double> q_ref(n), p_ref(n), u_ref(n);
    std::vector<double> ca_re_ref = acc0_re, ca_im_ref = acc0_im, cm_ref = acc0_c;
    ref.quotients(num.data(), den.data(), q_ref.data(), n);
    ref.ped_costs(dx.data(), dy.data(), p_ref.data(), n);
    ref.pd_update(base.data(), scale.data(), p_ref.data(), u_ref.data(), n);
    ref.center_accum(r_re, r_im, s_re.data(), s_im.data(), ca_re_ref.data(),
                     ca_im_ref.data(), n);
    ref.cmul_accum(a_re, a_im, inter.data(), cm_ref.data(), n);

    for (const simd::Kernel* k : simd::supported_kernels()) {
      const std::string who = std::string(k->name) + " n=" + std::to_string(n);
      std::vector<double> q(n), p(n), u(n);
      std::vector<double> ca_re = acc0_re, ca_im = acc0_im, cm = acc0_c;
      k->quotients(num.data(), den.data(), q.data(), n);
      k->ped_costs(dx.data(), dy.data(), p.data(), n);
      k->pd_update(base.data(), scale.data(), p_ref.data(), u.data(), n);
      k->center_accum(r_re, r_im, s_re.data(), s_im.data(), ca_re.data(), ca_im.data(), n);
      k->cmul_accum(a_re, a_im, inter.data(), cm.data(), n);
      expect_bits_equal(q, q_ref, who + " quotients");
      expect_bits_equal(p, p_ref, who + " ped_costs");
      expect_bits_equal(u, u_ref, who + " pd_update");
      expect_bits_equal(ca_re, ca_re_ref, who + " center_accum re");
      expect_bits_equal(ca_im, ca_im_ref, who + " center_accum im");
      expect_bits_equal(cm, cm_ref, who + " cmul_accum");
    }
  }
}

// ------------------------------------------------------------- rotation --

TEST(BatchedRotation, RotateTransposeMatchesLinalgBitExactOnEveryTier) {
  Rng rng(5151);
  simd::RotateScratch scratch;
  for (const std::size_t count : {std::size_t{1}, std::size_t{3}, std::size_t{4},
                                  std::size_t{7}, std::size_t{48}}) {
    const auto a = random_channel(rng, 4, 4);
    const auto y = random_channel(rng, 4, count);  // Any complex data works.
    linalg::CMatrix want;
    multiply_transpose_into(a, y, want);
    for (const simd::Kernel* k : simd::supported_kernels()) {
      KernelGuard guard(k->name);
      linalg::CMatrix got;
      simd::rotate_transpose(a, y, got, scratch);
      ASSERT_EQ(got.rows(), want.rows()) << k->name;
      ASSERT_EQ(got.cols(), want.cols()) << k->name;
      for (std::size_t i = 0; i < got.rows(); ++i)
        for (std::size_t j = 0; j < got.cols(); ++j) {
          EXPECT_EQ(got(i, j).real(), want(i, j).real())
              << k->name << " count=" << count << " (" << i << "," << j << ")";
          EXPECT_EQ(got(i, j).imag(), want(i, j).imag())
              << k->name << " count=" << count << " (" << i << "," << j << ")";
        }

      // Packed root centers = the per-vector componentwise divide, lane by
      // lane.
      const double diag = 0.25 + rng.uniform();
      std::vector<cf64> centers;
      simd::packed_root_centers(want, a.rows() - 1, diag, centers, scratch);
      ASSERT_EQ(centers.size(), count) << k->name;
      for (std::size_t v = 0; v < count; ++v) {
        const cf64 z = want(v, a.rows() - 1);
        EXPECT_EQ(centers[v].real(), z.real() / diag) << k->name << " v=" << v;
        EXPECT_EQ(centers[v].imag(), z.imag() / diag) << k->name << " v=" << v;
      }
    }
  }
}

// ---------------------------------------------------- full-detector parity --

/// The tree-search detectors the bit-exactness acceptance criterion names,
/// plus the level-major packed searches (K-Best, FSD) and the composites
/// that embed a sphere search.
const char* kTreeSearchSpecs[] = {"geosphere", "geosphere-2dzz", "geosphere-sqrd",
                                  "eth-sd",    "shabany",        "rvd",
                                  "hybrid",    "kbest:8",        "fsd",
                                  "soft-geosphere"};

class LaneParity : public ::testing::TestWithParam<const char*> {};

TEST_P(LaneParity, EveryKernelTierAndLanePolicyMatchesScalarLoop) {
  const DetectorSpec spec = DetectorSpec::parse(GetParam());
  const double n0 = db_to_lin(-25.0);
  // W is the widest supported SIMD width: batch sizes {1, W-1, W, 48}
  // exercise sub-width, exact-width, and multi-round batches.
  const std::size_t w = simd::supported_kernels().back()->width;

  for (const unsigned qam : {16u, 64u, 256u}) {
    const Constellation& c = Constellation::qam(qam);
    Rng rng(7000 + qam);
    const auto h = random_channel(rng, 4, 4);

    std::vector<std::size_t> counts = {1, w, 48};
    if (w > 1) counts.push_back(w - 1);
    for (const std::size_t count : counts) {
      linalg::CMatrix y_batch(h.rows(), count);
      for (std::size_t v = 0; v < count; ++v) {
        const auto sent = random_indices(rng, c, h.cols());
        y_batch.set_col(v, transmit(rng, h, c, sent, n0));
      }

      // Reference: a per-vector loop on the scalar tier with the default
      // (sequential) lane policy -- the configuration the goldens pin.
      std::vector<unsigned> ref_indices;
      std::vector<double> ref_llrs;
      DetectionStats ref_stats;
      {
        KernelGuard kernel(simd::scalar_kernel().name);
        const auto det = spec.create(c);
        det->prepare(h, n0);
        CVector y;
        for (std::size_t v = 0; v < count; ++v) {
          y_batch.col_into(v, y);
          if (SoftDetector* soft = det->soft()) {
            const SoftDetectionResult r = soft->solve_soft(y);
            ref_indices.insert(ref_indices.end(), r.indices.begin(), r.indices.end());
            ref_llrs.insert(ref_llrs.end(), r.llrs.begin(), r.llrs.end());
            ref_stats += r.stats;
          } else {
            const DetectionResult r = det->solve(y);
            ref_indices.insert(ref_indices.end(), r.indices.begin(), r.indices.end());
            ref_stats += r.stats;
          }
        }
      }

      for (const simd::Kernel* k : simd::supported_kernels()) {
        // Lanes=1 runs the sequential packed-rotation path; lanes=4 forces
        // the lockstep lane engine (a no-op for the level-major searches,
        // which are always packed).
        for (const std::size_t lanes : {std::size_t{1}, std::size_t{4}}) {
          const std::string who = spec.text() + " kernel=" + k->name +
                                  " lanes=" + std::to_string(lanes) +
                                  " qam=" + std::to_string(qam) +
                                  " count=" + std::to_string(count);
          KernelGuard kernel(k->name);
          LaneGuard lane(lanes);
          const auto det = spec.create(c);
          det->prepare(h, n0);
          if (SoftDetector* soft = det->soft()) {
            SoftBatchResult out;
            soft->solve_soft_batch(y_batch, out);
            EXPECT_EQ(out.indices, ref_indices) << who;
            expect_bits_equal(out.llrs, ref_llrs, who + " llrs");
            expect_same_stats(out.stats, ref_stats, who);
          } else {
            BatchResult out;
            det->solve_batch(y_batch, out);
            EXPECT_EQ(out.indices, ref_indices) << who;
            expect_same_stats(out.stats, ref_stats, who);
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTreeSearchDetectors, LaneParity,
                         ::testing::ValuesIn(kTreeSearchSpecs),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& ch : name)
                             if (ch == ':' || ch == '-') ch = '_';
                           return name;
                         });

// ------------------------------------------------------------ edge cases --

TEST(LaneEdgeCases, CornerCenterSlicesToConstellationEdgeOnAllTiers) {
  // A received vector far outside the constellation corner: slicing clamps
  // to the edge and every zigzag step is boundary-sideways (one direction
  // exhausted immediately). The detector must return the corner point, per
  // vector and batched, on every tier.
  const Constellation& c = Constellation::qam(16);
  const double n0 = db_to_lin(-20.0);
  linalg::CMatrix h(2, 2);  // Diagonal channel: streams decouple.
  h(0, 0) = cf64(1.0, 0.0);
  h(1, 1) = cf64(0.8, 0.1);

  // Find the corner index: the point with maximal re+im.
  unsigned corner = 0;
  for (unsigned i = 1; i < c.order(); ++i)
    if (c.point(i).real() + c.point(i).imag() >
        c.point(corner).real() + c.point(corner).imag())
      corner = i;

  CVector x(2);
  x[0] = c.point(corner) * 4.0;  // Far beyond the corner.
  x[1] = c.point(corner) * 4.0;
  CVector y = h * x;

  const std::size_t count = 5;
  linalg::CMatrix y_batch(2, count);
  for (std::size_t v = 0; v < count; ++v) y_batch.set_col(v, y);

  for (const char* name : {"geosphere", "geosphere-2dzz", "eth-sd", "shabany"}) {
    for (const simd::Kernel* k : simd::supported_kernels()) {
      KernelGuard kernel(k->name);
      for (const std::size_t lanes : {std::size_t{1}, std::size_t{4}}) {
        LaneGuard lane(lanes);
        const auto det = DetectorSpec::parse(name).create(c);
        det->prepare(h, n0);
        const DetectionResult r = det->solve(y);
        ASSERT_EQ(r.indices.size(), 2u) << name;
        EXPECT_EQ(r.indices[0], corner) << name << " " << k->name;
        EXPECT_EQ(r.indices[1], corner) << name << " " << k->name;
        const BatchResult b = det->solve_batch(y_batch);
        for (std::size_t v = 0; v < count; ++v) {
          EXPECT_EQ(b.indices[2 * v], corner) << name << " " << k->name << " v=" << v;
          EXPECT_EQ(b.indices[2 * v + 1], corner) << name << " " << k->name << " v=" << v;
        }
      }
    }
  }
}

TEST(LaneEdgeCases, RadiusPruneOnFirstCandidateClosesEnumeratorCleanly) {
  // A budget below the first (sliced, cheapest) candidate's cost: next()
  // must report exhaustion immediately -- the lane engine retires such a
  // lane on its very first superstep, so the enumerator must not leave a
  // half-open column behind. Enumerators are seeded identically and must
  // agree they are exhausted, and a later call with the same budget stays
  // exhausted.
  const Constellation& c = Constellation::qam(16);
  DetectionStats stats;

  sphere::GeoEnumerator geo;
  geo.attach(c);
  geo.reset(cf64(0.4, -0.3), stats);  // Between grid points: cost > 0.
  EXPECT_EQ(geo.next(1e-9, stats), std::nullopt);
  EXPECT_EQ(geo.next(1e-9, stats), std::nullopt);

  sphere::HessEnumerator hess;
  hess.attach(c);
  hess.reset(cf64(0.4, -0.3), stats);
  EXPECT_EQ(hess.next(1e-9, stats), std::nullopt);
  EXPECT_EQ(hess.next(1e-9, stats), std::nullopt);

  sphere::ShabanyEnumerator shab;
  shab.attach(c);
  shab.reset(cf64(0.4, -0.3), stats);
  EXPECT_EQ(shab.next(1e-9, stats), std::nullopt);
  EXPECT_EQ(shab.next(1e-9, stats), std::nullopt);

  // An exactly-on-grid center has first-candidate cost 0 < any positive
  // budget: the sliced point must still come out before exhaustion.
  sphere::GeoEnumerator exact;
  exact.attach(c);
  exact.reset(cf64(1.0, 1.0), stats);  // Grid point (odd coordinates).
  const auto child = exact.next(1e-9, stats);
  ASSERT_TRUE(child.has_value());
  EXPECT_EQ(child->cost_grid, 0.0);
}

TEST(LaneEdgeCases, SingleStreamTreeMatchesBruteForceOnAllTiers) {
  // 1-stream channel: the "tree" is a single level, the root center is the
  // whole center computation, and lockstep lanes degenerate to independent
  // slicing problems. Decisions must equal the brute-force ML argmin.
  const Constellation& c = Constellation::qam(64);
  const double n0 = db_to_lin(-18.0);
  Rng rng(8080);
  const auto h = random_channel(rng, 4, 1);

  const std::size_t count = 6;
  linalg::CMatrix y_batch(4, count);
  std::vector<unsigned> want(count);
  CVector y;
  for (std::size_t v = 0; v < count; ++v) {
    const auto sent = random_indices(rng, c, 1);
    y_batch.set_col(v, transmit(rng, h, c, sent, n0));
    y_batch.col_into(v, y);
    unsigned best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (unsigned i = 0; i < c.order(); ++i) {
      const double d = hypothesis_distance_sq(y, h, c, {i});
      if (d < best_d) {
        best_d = d;
        best = i;
      }
    }
    want[v] = best;
  }

  for (const char* name : {"geosphere", "eth-sd", "shabany", "kbest:8", "fsd"}) {
    for (const simd::Kernel* k : simd::supported_kernels()) {
      KernelGuard kernel(k->name);
      LaneGuard lane(4);
      const auto det = DetectorSpec::parse(name).create(c);
      det->prepare(h, n0);
      const BatchResult b = det->solve_batch(y_batch);
      ASSERT_EQ(b.indices.size(), count) << name;
      for (std::size_t v = 0; v < count; ++v)
        EXPECT_EQ(b.indices[v], want[v]) << name << " " << k->name << " v=" << v;
    }
  }
}

TEST(LaneEdgeCases, PartialBatchSmallerThanLaneCountMatchesLoop) {
  // Lane count forced above the batch size: the engine must mask out the
  // unfilled lanes, not read or write them. Results match the per-vector
  // loop exactly, including counters.
  const Constellation& c = Constellation::qam(16);
  const double n0 = db_to_lin(-22.0);
  Rng rng(9090);
  const auto h = random_channel(rng, 4, 4);
  const std::size_t count = 3;  // < kMaxLanes and < the forced lane count.
  linalg::CMatrix y_batch(4, count);
  for (std::size_t v = 0; v < count; ++v) {
    const auto sent = random_indices(rng, c, 4);
    y_batch.set_col(v, transmit(rng, h, c, sent, n0));
  }

  for (const char* name : {"geosphere", "soft-geosphere"}) {
    const DetectorSpec spec = DetectorSpec::parse(name);
    std::vector<unsigned> ref_indices;
    DetectionStats ref_stats;
    {
      const auto det = spec.create(c);
      det->prepare(h, n0);
      CVector y;
      for (std::size_t v = 0; v < count; ++v) {
        y_batch.col_into(v, y);
        const DetectionResult r = det->solve(y);
        ref_indices.insert(ref_indices.end(), r.indices.begin(), r.indices.end());
        ref_stats += r.stats;
      }
    }
    LaneGuard lane(simd::kMaxLanes);
    const auto det = spec.create(c);
    det->prepare(h, n0);
    BatchResult out;
    det->solve_batch(y_batch, out);
    EXPECT_EQ(out.indices, ref_indices) << name;
    expect_same_stats(out.stats, ref_stats, name);
  }
}

}  // namespace
}  // namespace geosphere

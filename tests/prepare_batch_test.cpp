// Tests for the batched-preparation phase (prepare_batch / select_prepared)
// added to the four-phase detection contract:
//  * batch-prepared solves are BIT-identical to the scalar prepare() loop --
//    decisions, symbols, LLRs and counters -- for every registry detector,
//    at 16/64/256-QAM, for batch sizes {1, W-1, W, nsc} at every compiled
//    SIMD kernel tier (GEOSPHERE_KERNEL override hook),
//  * slots select in any order and re-select cleanly,
//  * a shape change between batches leaves no stale workspace behind,
//  * an empty batch prepares nothing and select fails loudly,
//  * a plain prepare() invalidates the batch,
//  * per-slot preparation failures (rank deficiency, singular filters)
//    surface at select with the exact exception the scalar prepare() throws,
//    leaving the other slots selectable, and
//  * the link layer's accounting invariant: a frame of nsc subcarriers
//    counts ONE prepare_batch_call and nsc preprocess_calls.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <typeinfo>
#include <vector>

#include "channel/rayleigh.h"
#include "common/db.h"
#include "common/rng.h"
#include "detect/prepare/simd/dispatch.h"
#include "detect/spec.h"
#include "link/link_simulator.h"
#include "phy/frame.h"
#include "test_util.h"

namespace geosphere {
namespace {

using geosphere::testing::random_channel;
using geosphere::testing::random_indices;
using geosphere::testing::transmit;

/// Every registry detector in a creatable spec form (required parameters
/// get a representative value).
std::vector<std::string> all_registry_specs() {
  std::vector<std::string> out;
  for (const DetectorInfo& info : detector_registry())
    out.push_back(info.param_required ? info.name + ":8" : info.name);
  return out;
}

/// RAII kernel-tier override (restores env/auto selection on scope exit).
class KernelOverride {
 public:
  explicit KernelOverride(const char* name) { prepare::simd::set_kernel_override(name); }
  ~KernelOverride() { prepare::simd::set_kernel_override(nullptr); }
  KernelOverride(const KernelOverride&) = delete;
  KernelOverride& operator=(const KernelOverride&) = delete;
};

std::uint64_t bits_of(double v) {
  std::uint64_t out;
  std::memcpy(&out, &v, sizeof out);
  return out;
}

/// Bitwise equality (distinguishes +0.0 from -0.0; the masked-lane contract
/// forbids sign flips, so "equal value" is not strong enough here).
void expect_bits_eq(const std::vector<double>& a, const std::vector<double>& b,
                    const std::string& who) {
  ASSERT_EQ(a.size(), b.size()) << who;
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(bits_of(a[i]), bits_of(b[i])) << who << " llr[" << i << "]";
}

void expect_bits_eq(const CVector& a, const CVector& b, const std::string& who) {
  ASSERT_EQ(a.size(), b.size()) << who;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(bits_of(a[i].real()), bits_of(b[i].real())) << who << " sym[" << i << "]";
    EXPECT_EQ(bits_of(a[i].imag()), bits_of(b[i].imag())) << who << " sym[" << i << "]";
  }
}

void expect_same_stats(const DetectionStats& a, const DetectionStats& b,
                       const std::string& who) {
  EXPECT_EQ(a.ped_computations, b.ped_computations) << who;
  EXPECT_EQ(a.visited_nodes, b.visited_nodes) << who;
  EXPECT_EQ(a.lb_lookups, b.lb_lookups) << who;
  EXPECT_EQ(a.lb_prunes, b.lb_prunes) << who;
  EXPECT_EQ(a.slicer_ops, b.slicer_ops) << who;
  EXPECT_EQ(a.queue_ops, b.queue_ops) << who;
  EXPECT_EQ(a.tree_searches, b.tree_searches) << who;
  EXPECT_EQ(a.counter_updates, b.counter_updates) << who;
}

/// One detector's reference answers for a set of channels, computed with
/// the scalar per-channel prepare() path (which never touches the packed
/// kernels, so it is the tier-independent truth).
struct Reference {
  std::vector<DetectionResult> hard;
  std::vector<SoftDetectionResult> soft;
};

struct Problem {
  std::vector<linalg::CMatrix> hs;
  std::vector<CVector> ys;
  double n0 = 0.0;
};

Problem make_problem(unsigned order, std::size_t count, std::size_t na, std::size_t nc,
                     std::uint64_t seed) {
  const Constellation& c = Constellation::qam(order);
  // High SNR keeps the 256-QAM tree searches tight; parity does not care.
  Problem p;
  p.n0 = db_to_lin(order >= 64 ? -24.0 : -14.0);
  Rng rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    p.hs.push_back(random_channel(rng, na, nc));
    p.ys.push_back(transmit(rng, p.hs.back(), c, random_indices(rng, c, nc), p.n0));
  }
  return p;
}

Reference solve_by_scalar_loop(Detector& det, const Problem& p) {
  Reference ref;
  const bool is_soft = det.soft() != nullptr;
  for (std::size_t i = 0; i < p.hs.size(); ++i) {
    det.prepare(p.hs[i], p.n0);
    if (is_soft)
      ref.soft.push_back(det.soft()->solve_soft(p.ys[i]));
    else
      ref.hard.push_back(det.solve(p.ys[i]));
  }
  return ref;
}

void expect_slot_matches(Detector& det, const Problem& p, const Reference& ref,
                         std::size_t i, const std::string& who) {
  if (det.soft() != nullptr) {
    const SoftDetectionResult got = det.soft()->solve_soft(p.ys[i]);
    EXPECT_EQ(got.indices, ref.soft[i].indices) << who;
    expect_bits_eq(got.llrs, ref.soft[i].llrs, who);
    expect_same_stats(got.stats, ref.soft[i].stats, who);
  } else {
    const DetectionResult got = det.solve(p.ys[i]);
    EXPECT_EQ(got.indices, ref.hard[i].indices) << who;
    expect_bits_eq(got.symbols, ref.hard[i].symbols, who);
    expect_same_stats(got.stats, ref.hard[i].stats, who);
  }
}

class PrepareBatchRegistry : public ::testing::TestWithParam<std::string> {};

TEST_P(PrepareBatchRegistry, BatchMatchesScalarLoopAtEveryKernelTierAndSize) {
  const DetectorSpec spec = DetectorSpec::parse(GetParam());
  // nsc of the default frame: the link layer's real batch size.
  const std::size_t nsc = phy::FrameConfig{}.data_subcarriers;

  for (const unsigned order : {16u, 64u, 256u}) {
    const Constellation& c = Constellation::qam(order);
    // Exhaustive ML at >= 64-QAM needs a narrower channel to stay cheap;
    // parity is per-detector, so dims only have to match between paths.
    const std::size_t nc = (spec.base() == "ml" && order >= 64) ? 2 : 4;
    const Problem p = make_problem(order, nsc, 4, nc, /*seed=*/900 + order);

    const auto scalar_det = spec.create(c);
    const Reference ref = solve_by_scalar_loop(*scalar_det, p);

    const auto batch_det = spec.create(c);
    for (const prepare::simd::Kernel* kernel : prepare::simd::supported_kernels()) {
      KernelOverride tier(kernel->name);
      std::vector<std::size_t> sizes{1, kernel->width, nsc};
      if (kernel->width > 1) sizes.push_back(kernel->width - 1);
      for (const std::size_t count : sizes) {
        const std::string who = spec.text() + "/" + std::to_string(order) + "qam/" +
                                kernel->name + "/n" + std::to_string(count);
        batch_det->prepare_batch(p.hs.data(), count, p.n0);
        EXPECT_EQ(batch_det->prepared_batch_size(), count) << who;
        for (std::size_t i = 0; i < count; ++i) {
          batch_det->select_prepared(i);
          expect_slot_matches(*batch_det, p, ref, i, who + "/slot" + std::to_string(i));
        }
      }
    }
  }
}

TEST_P(PrepareBatchRegistry, SlotsSelectInAnyOrderAndReselect) {
  const DetectorSpec spec = DetectorSpec::parse(GetParam());
  const Constellation& c = Constellation::qam(16);
  const Problem p = make_problem(16, 5, 4, 4, /*seed=*/77);

  const auto scalar_det = spec.create(c);
  const Reference ref = solve_by_scalar_loop(*scalar_det, p);

  const auto det = spec.create(c);
  det->prepare_batch(p.hs, p.n0);
  // Out of order, with a repeat: selecting must activate exactly slot i's
  // preparation regardless of history.
  for (const std::size_t i : {std::size_t{4}, std::size_t{1}, std::size_t{3},
                              std::size_t{0}, std::size_t{2}, std::size_t{4}}) {
    det->select_prepared(i);
    expect_slot_matches(*det, p, ref, i, spec.text() + "/slot" + std::to_string(i));
  }
}

TEST_P(PrepareBatchRegistry, ShapeChangeBetweenBatchesLeavesNoStaleState) {
  // Batch at 4x4, then batch the SAME instance at 4x2 and back: every
  // workspace dimension must be rewritten by the new batch (the scalar
  // analogue of RepreparingReusesTheInstanceSafely).
  const DetectorSpec spec = DetectorSpec::parse(GetParam());
  const Constellation& c = Constellation::qam(16);
  const Problem big = make_problem(16, 3, 4, 4, /*seed=*/31);
  const Problem small = make_problem(16, 3, 4, 2, /*seed=*/32);

  const auto scalar_det = spec.create(c);
  const Reference ref_big = solve_by_scalar_loop(*scalar_det, big);
  const Reference ref_small = solve_by_scalar_loop(*scalar_det, small);

  const auto det = spec.create(c);
  for (const Problem* p : {&big, &small, &big}) {
    const Reference& ref = p == &small ? ref_small : ref_big;
    det->prepare_batch(p->hs, p->n0);
    for (std::size_t i = 0; i < p->hs.size(); ++i) {
      det->select_prepared(i);
      expect_slot_matches(*det, *p, ref, i, spec.text() + "/shape-change");
    }
  }
}

TEST_P(PrepareBatchRegistry, EmptyBatchAndOutOfRangeSelectFailLoudly) {
  const DetectorSpec spec = DetectorSpec::parse(GetParam());
  const auto det = spec.create(Constellation::qam(16));

  det->prepare_batch(std::vector<linalg::CMatrix>{}, 0.01);
  EXPECT_EQ(det->prepared_batch_size(), 0u);
  EXPECT_FALSE(det->prepared());
  EXPECT_THROW(det->select_prepared(0), std::logic_error) << spec.text();
  EXPECT_THROW(det->solve(CVector(4)), std::logic_error) << spec.text();

  const Problem p = make_problem(16, 2, 4, 4, /*seed=*/55);
  det->prepare_batch(p.hs, p.n0);
  EXPECT_THROW(det->select_prepared(2), std::logic_error) << spec.text();

  // A plain prepare() invalidates the batch entirely.
  det->prepare(p.hs[0], p.n0);
  EXPECT_EQ(det->prepared_batch_size(), 0u);
  EXPECT_THROW(det->select_prepared(0), std::logic_error) << spec.text();
  EXPECT_TRUE(det->prepared());  // ... but the scalar preparation stands.
}

/// "" if `fn` returns, else "<dynamic type>: <what()>" -- the signature the
/// batched path must reproduce exactly at select time.
template <typename F>
std::string thrown_signature(F&& fn) {
  try {
    fn();
    return "";
  } catch (const std::exception& e) {
    return std::string(typeid(e).name()) + ": " + e.what();
  }
}

TEST_P(PrepareBatchRegistry, FailingSlotRethrowsAtSelectLeavingOthersSelectable) {
  const DetectorSpec spec = DetectorSpec::parse(GetParam());
  const Constellation& c = Constellation::qam(16);
  Problem p = make_problem(16, 3, 4, 4, /*seed=*/41);
  // Slot 1 is exactly rank deficient (duplicated column). Detectors that
  // reject it at scalar prepare() must throw the SAME exception at select;
  // detectors that tolerate it (e.g. MMSE's noise-regularized Gram) must
  // keep tolerating it.
  for (std::size_t i = 0; i < 4; ++i) p.hs[1](i, 2) = p.hs[1](i, 0);
  Rng yrng(42);
  p.ys[1] = transmit(yrng, p.hs[1], c, random_indices(yrng, c, 4), p.n0);

  const auto scalar_det = spec.create(c);
  std::vector<std::string> scalar_sig(3);
  for (std::size_t i = 0; i < 3; ++i)
    scalar_sig[i] = thrown_signature([&] { scalar_det->prepare(p.hs[i], p.n0); });
  ASSERT_EQ(scalar_sig[0], "") << spec.text();  // Random slots prepare fine.
  ASSERT_EQ(scalar_sig[2], "") << spec.text();

  for (const prepare::simd::Kernel* kernel : prepare::simd::supported_kernels()) {
    KernelOverride tier(kernel->name);
    const std::string who = spec.text() + "/" + kernel->name;
    const auto det = spec.create(c);
    det->prepare_batch(p.hs, p.n0);
    for (std::size_t i = 0; i < 3; ++i)
      EXPECT_EQ(thrown_signature([&] { det->select_prepared(i); }), scalar_sig[i])
          << who << "/slot" << i;
    // The failing slot (if any) leaves the healthy slots selectable.
    det->select_prepared(0);
    EXPECT_TRUE(det->prepared()) << who;
    det->select_prepared(2);
    EXPECT_TRUE(det->prepared()) << who;
  }
}

INSTANTIATE_TEST_SUITE_P(AllRegistryDetectors, PrepareBatchRegistry,
                         ::testing::ValuesIn(all_registry_specs()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& ch : name)
                             if (ch == ':' || ch == '-') ch = '_';
                           return name;
                         });

TEST(PrepareBatch, LinkCountsOneBatchPerFrameAndOneSelectPerSubcarrier) {
  // The accounting invariant of the batched link path: a frame's nsc
  // subcarriers cost ONE prepare_batch_call and nsc preprocess_calls --
  // preprocess_calls stays the logical factorization count, so the
  // amortization ratio detection_calls / preprocess_calls is untouched.
  channel::RayleighChannel ch(4, 2);
  link::LinkScenario scenario;
  scenario.frame.qam_order = 16;
  scenario.frame.payload_bytes = 100;
  scenario.snr_db = 18.0;
  const phy::FrameCodec codec(scenario.frame);
  const std::size_t nsc = scenario.frame.data_subcarriers;
  const std::size_t syms = codec.ofdm_symbols_per_frame();

  link::LinkSimulator sim(ch, scenario);
  const std::size_t frames = 3;

  for (const char* name : {"zf", "geosphere", "soft-geosphere"}) {
    const DetectorSpec spec = DetectorSpec::parse(name);
    const auto det = spec.create(Constellation::qam(16));
    const link::LinkStats stats = sim.run(*det, spec.decision(), frames, /*seed=*/7);
    EXPECT_EQ(stats.detection.prepare_batch_calls, frames) << name;
    EXPECT_EQ(stats.detection.preprocess_calls, frames * nsc) << name;
    EXPECT_EQ(stats.detection_calls, frames * nsc * syms) << name;
  }
}

}  // namespace
}  // namespace geosphere

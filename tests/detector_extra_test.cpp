// Cross-detector properties beyond the core suites: the RVD formulation,
// the condition-threshold hybrid on realistic ensembles, K-best accuracy
// scaling, ordering preprocessing, and the AWGN theory references.
#include <gtest/gtest.h>

#include <cmath>

#include "channel/metrics.h"
#include "channel/testbed_ensemble.h"
#include "common/db.h"
#include "common/rng.h"
#include "detect/hybrid.h"
#include "detect/kbest.h"
#include "detect/ml_exhaustive.h"
#include "linalg/cond.h"
#include "linalg/qr.h"
#include "detect/rvd_sphere.h"
#include "detect/sphere/sphere_decoder.h"
#include "link/theory.h"
#include "test_util.h"

namespace geosphere {
namespace {

using geosphere::testing::hypothesis_distance_sq;
using geosphere::testing::random_channel;
using geosphere::testing::random_indices;
using geosphere::testing::transmit;

// ---- RVD sphere decoder -----------------------------------------------------

class RvdMlEquivalence : public ::testing::TestWithParam<unsigned> {};

TEST_P(RvdMlEquivalence, MatchesExhaustiveMl) {
  const unsigned order = GetParam();
  const Constellation& c = Constellation::qam(order);
  RvdSphereDecoder rvd(c);
  MlExhaustiveDetector ml(c);
  Rng rng(order + 5);
  const double n0 = db_to_lin(-10.0);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t nc = order >= 64 ? 2 : 3;
    const auto h = random_channel(rng, nc + 1, nc);
    const auto sent = random_indices(rng, c, nc);
    const auto y = transmit(rng, h, c, sent, n0);
    const auto r = rvd.detect(y, h, n0);
    ml.detect(y, h, n0);
    EXPECT_NEAR(hypothesis_distance_sq(y, h, c, r.indices), ml.last_distance_sq(),
                1e-9 * (1.0 + ml.last_distance_sq()))
        << "order=" << order << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, RvdMlEquivalence, ::testing::Values(4u, 16u, 64u, 256u));

TEST(Rvd, AgreesWithGeosphereDecisions) {
  const Constellation& c = Constellation::qam(64);
  RvdSphereDecoder rvd(c);
  const auto geo = sphere::make_geosphere(c);
  Rng rng(11);
  const double n0 = db_to_lin(-18.0);
  for (int trial = 0; trial < 30; ++trial) {
    const auto h = random_channel(rng, 4, 4);
    const auto sent = random_indices(rng, c, 4);
    const auto y = transmit(rng, h, c, sent, n0);
    EXPECT_EQ(rvd.detect(y, h, n0).indices, geo->detect(y, h, n0).indices);
  }
}

TEST(Rvd, NoiselessRecovery) {
  const Constellation& c = Constellation::qam(256);
  RvdSphereDecoder rvd(c);
  Rng rng(12);
  for (int trial = 0; trial < 20; ++trial) {
    const auto h = random_channel(rng, 4, 3);
    const auto sent = random_indices(rng, c, 3);
    const auto y = transmit(rng, h, c, sent, 0.0);
    EXPECT_EQ(rvd.detect(y, h, 0.0).indices, sent);
  }
}

TEST(Rvd, RejectsBadShapes) {
  const Constellation& c = Constellation::qam(4);
  RvdSphereDecoder rvd(c);
  Rng rng(13);
  const auto wide = random_channel(rng, 2, 3);
  EXPECT_THROW(rvd.detect(CVector(2), wide, 0.1), std::invalid_argument);
}

TEST(Rvd, TreeIsDeeperButBranchesThinner) {
  // The structural difference: RVD visits at least as many nodes (2x the
  // levels) but its per-node costs are single PAM distances.
  const Constellation& c = Constellation::qam(64);
  RvdSphereDecoder rvd(c);
  const auto geo = sphere::make_geosphere(c);
  Rng rng(14);
  const double n0 = db_to_lin(-20.0);
  std::uint64_t rvd_nodes = 0;
  std::uint64_t geo_nodes = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const auto h = random_channel(rng, 4, 4);
    const auto sent = random_indices(rng, c, 4);
    const auto y = transmit(rng, h, c, sent, n0);
    rvd_nodes += rvd.detect(y, h, n0).stats.visited_nodes;
    geo_nodes += geo->detect(y, h, n0).stats.visited_nodes;
  }
  EXPECT_GT(rvd_nodes, geo_nodes);  // Deeper tree.
}

// ---- Hybrid on a realistic ensemble -----------------------------------------

TEST(Hybrid, RoutesByMeasuredConditioning) {
  channel::TestbedConfig tc;
  tc.clients = 4;
  tc.ap_antennas = 4;
  channel::TestbedEnsemble ensemble(tc);
  const Constellation& c = Constellation::qam(16);
  HybridDetector hybrid(c, 15.0);  // Switch above kappa^2 = 15 dB.
  Rng rng(15);
  const double n0 = db_to_lin(-20.0);

  std::size_t expected_sphere = 0;
  const int trials = 100;
  for (int trial = 0; trial < trials; ++trial) {
    const auto h = ensemble.draw_flat(rng);
    // The hybrid prices conditioning off the diagonal of the channel's QR
    // factor (the factorization the sphere decoder then adopts), so the
    // reference must read the same estimate rather than the SVD kappa.
    const auto [q, r] = linalg::householder_qr(h);
    if (linalg::qr_diag_condition_sq_db(r) > 15.0) ++expected_sphere;
    const auto sent = random_indices(rng, c, 4);
    const auto y = transmit(rng, h, c, sent, n0);
    hybrid.detect(y, h, n0);
  }
  EXPECT_NEAR(hybrid.sphere_fraction(), static_cast<double>(expected_sphere) / trials,
              1e-12);
  // On the 4x4 ensemble most links are poorly conditioned.
  EXPECT_GT(hybrid.sphere_fraction(), 0.5);
  EXPECT_LT(hybrid.sphere_fraction(), 1.0);
}

// ---- K-best accuracy scaling -------------------------------------------------

TEST(KBest, AccuracyImprovesWithK) {
  const Constellation& c = Constellation::qam(16);
  Rng rng(16);
  const double n0 = db_to_lin(-14.0);
  const auto geo = sphere::make_geosphere(c);

  std::vector<unsigned> ks{1, 2, 4, 16};
  std::vector<int> ml_misses;
  for (const unsigned k : ks) {
    KBestDetector kbest(c, k);
    Rng trial_rng(17);
    int misses = 0;
    for (int trial = 0; trial < 120; ++trial) {
      const auto h = random_channel(trial_rng, 4, 4);
      const auto sent = random_indices(trial_rng, c, 4);
      const auto y = transmit(trial_rng, h, c, sent, n0);
      const double d_kbest = hypothesis_distance_sq(y, h, c, kbest.detect(y, h, n0).indices);
      const double d_ml = hypothesis_distance_sq(y, h, c, geo->detect(y, h, n0).indices);
      misses += d_kbest > d_ml * (1.0 + 1e-9);
    }
    ml_misses.push_back(misses);
  }
  // Monotone (weakly) improving toward ML.
  for (std::size_t i = 1; i < ml_misses.size(); ++i)
    EXPECT_LE(ml_misses[i], ml_misses[i - 1] + 2);
  EXPECT_GT(ml_misses.front(), ml_misses.back());
}

// ---- Ordering preprocessing ---------------------------------------------------

TEST(SortedQr, ShrinksTreeOnAverage) {
  const Constellation& c = Constellation::qam(16);
  const auto plain = sphere::make_geosphere(c);
  sphere::SphereConfig cfg;
  cfg.sorted_qr = true;
  const auto sorted = sphere::make_geosphere(c, cfg);
  Rng rng(18);
  const double n0 = db_to_lin(-12.0);
  std::uint64_t plain_nodes = 0;
  std::uint64_t sorted_nodes = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const auto h = random_channel(rng, 4, 4);
    const auto sent = random_indices(rng, c, 4);
    const auto y = transmit(rng, h, c, sent, n0);
    plain_nodes += plain->detect(y, h, n0).stats.visited_nodes;
    sorted_nodes += sorted->detect(y, h, n0).stats.visited_nodes;
  }
  EXPECT_LT(sorted_nodes, plain_nodes);
}

// ---- AWGN theory references ----------------------------------------------------

TEST(Theory, QFunctionBasics) {
  EXPECT_NEAR(link::theory::q_function(0.0), 0.5, 1e-12);
  EXPECT_NEAR(link::theory::q_function(1.0), 0.1586552539, 1e-9);
  EXPECT_LT(link::theory::q_function(5.0), 3e-7);
}

TEST(Theory, SimulatedUncodedBerMatchesClosedForm) {
  // Single-stream AWGN (H = 1): Monte-Carlo BER vs the Gray-mapping formula.
  for (const unsigned order : {4u, 16u, 64u}) {
    const Constellation& c = Constellation::qam(order);
    const double snr_db = order == 4 ? 7.0 : (order == 16 ? 13.0 : 19.0);
    const double snr = db_to_lin(snr_db);
    const double n0 = 1.0 / snr;

    Rng rng(order);
    linalg::CMatrix h(1, 1);
    h(0, 0) = cf64{1.0, 0.0};
    std::size_t bit_errors = 0;
    const int symbols = 60000;
    for (int t = 0; t < symbols; ++t) {
      const auto sent = random_indices(rng, c, 1);
      const auto y = transmit(rng, h, c, sent, n0);
      bit_errors += c.bit_difference(c.slice(y[0]), sent[0]);
    }
    const double measured =
        static_cast<double>(bit_errors) / (static_cast<double>(symbols) * c.bits_per_symbol());
    const double predicted = link::theory::qam_bit_error_rate(order, snr);
    EXPECT_NEAR(measured, predicted, 0.25 * predicted + 2e-4)
        << "order=" << order << " snr=" << snr_db;
  }
}

TEST(Theory, SerAboveBerAndMonotoneInSnr) {
  for (const unsigned order : {4u, 16u, 64u, 256u}) {
    double prev_ser = 1.0;
    for (double snr_db = 5.0; snr_db <= 30.0; snr_db += 5.0) {
      const double snr = db_to_lin(snr_db);
      const double ser = link::theory::qam_symbol_error_rate(order, snr);
      const double ber = link::theory::qam_bit_error_rate(order, snr);
      EXPECT_GE(ser, ber);
      EXPECT_LT(ser, prev_ser);
      prev_ser = ser;
    }
  }
  EXPECT_THROW(link::theory::qam_bit_error_rate(8, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace geosphere

// End-to-end integration: the complete uplink through real OFDM samples --
// per-client coding chains, time-domain OFDM modulation, a multipath
// channel applied by convolution, preamble-based LS channel estimation,
// per-subcarrier Geosphere detection with the *estimated* channel, and
// per-client decoding. Exercises every subsystem against each other with
// no frequency-domain shortcuts.
#include <gtest/gtest.h>

#include <cmath>

#include "channel/frequency_selective.h"
#include "channel/rayleigh.h"
#include "channel/noise.h"
#include "channel/testbed_ensemble.h"
#include "channel/trace.h"
#include "common/db.h"
#include "common/rng.h"
#include "detect/spec.h"
#include "detect/sphere/sphere_decoder.h"
#include "link/link_simulator.h"
#include "phy/channel_estimation.h"
#include "phy/frame.h"
#include "phy/ofdm.h"

namespace geosphere {
namespace {

struct TimeDomainRun {
  std::size_t clients_ok = 0;
  double channel_est_error = 0.0;  ///< Mean |H_hat - H|^2 per entry.
};

/// Full sample-level uplink for `nc` clients and `na` antennas at `snr_db`.
TimeDomainRun run_time_domain_uplink(std::size_t na, std::size_t nc, unsigned qam,
                                     double snr_db, std::uint64_t seed,
                                     bool use_estimated_channel) {
  Rng rng(seed);
  const double n0 = channel::noise_variance_for_snr_db(snr_db);

  const phy::OfdmModem modem;
  const auto& params = modem.params();
  const std::size_t nsc = params.num_data_subcarriers();
  const std::size_t spsym = params.samples_per_symbol();

  // Multipath channel (4 taps, well within the 16-sample cyclic prefix).
  channel::FrequencySelectiveChannel model(na, nc, 4, 0.6);
  const channel::TapSet taps = model.draw_taps(rng);

  // --- Sounding phase: each client solos one pilot OFDM symbol. ----------
  phy::ChannelEstimator estimator(na, nc);
  std::vector<std::vector<CVector>> sounding(nc);
  for (std::size_t k = 0; k < nc; ++k) {
    const CVector tx = estimator.pilot_samples(k);
    std::vector<CVector> rx(na, CVector(tx.size(), cf64{}));
    taps.convolve_client(k, tx, rx);
    for (auto& stream : rx) channel::add_awgn(stream, n0, rng);
    sounding[k] = std::move(rx);
  }
  const std::vector<linalg::CMatrix> h_est = estimator.estimate(sounding);

  // --- Data phase. --------------------------------------------------------
  phy::FrameConfig fcfg;
  fcfg.qam_order = qam;
  fcfg.payload_bytes = 120;
  const phy::FrameCodec codec(fcfg);
  const Constellation& cons = codec.constellation();
  const std::size_t nsym = codec.ofdm_symbols_per_frame();

  std::vector<phy::EncodedFrame> frames(nc);
  std::vector<CVector> tx_streams(nc, CVector(nsym * spsym, cf64{}));
  for (std::size_t k = 0; k < nc; ++k) {
    frames[k] = codec.encode(rng.bits(fcfg.payload_bits()));
    for (std::size_t sym = 0; sym < nsym; ++sym) {
      CVector data(nsc);
      for (std::size_t f = 0; f < nsc; ++f)
        data[f] = cons.point(frames[k].symbol_at(sym, f, nsc));
      const CVector samples = modem.modulate(data);
      std::copy(samples.begin(), samples.end(),
                tx_streams[k].begin() + static_cast<std::ptrdiff_t>(sym * spsym));
    }
  }

  // Superpose all clients through the channel; add noise.
  std::vector<CVector> rx(na, CVector(nsym * spsym, cf64{}));
  for (std::size_t k = 0; k < nc; ++k) taps.convolve_client(k, tx_streams[k], rx);
  for (auto& stream : rx) channel::add_awgn(stream, n0, rng);

  // --- Receiver: OFDM demod, per-subcarrier joint detection, decoding. ----
  // Ground-truth per-subcarrier channel, for the estimation-error metric
  // and the perfect-CSI variant.
  std::vector<linalg::CMatrix> h_true(nsc);
  for (std::size_t f = 0; f < nsc; ++f)
    h_true[f] = taps.response(params.data_bins[f], params.fft_size);

  TimeDomainRun out;
  {
    double err = 0.0;
    for (std::size_t f = 0; f < nsc; ++f) {
      const auto diff = h_est[f] - h_true[f];
      err += diff.frobenius_norm_sq() / static_cast<double>(na * nc);
    }
    out.channel_est_error = err / static_cast<double>(nsc);
  }

  const auto detector = sphere::make_geosphere(cons);
  std::vector<std::vector<unsigned>> decided(nc,
                                             std::vector<unsigned>(nsym * nsc, 0));
  for (std::size_t sym = 0; sym < nsym; ++sym) {
    // Demodulate each antenna's samples for this OFDM symbol.
    std::vector<CVector> freq(na);
    for (std::size_t a = 0; a < na; ++a) {
      const CVector window(
          rx[a].begin() + static_cast<std::ptrdiff_t>(sym * spsym),
          rx[a].begin() + static_cast<std::ptrdiff_t>((sym + 1) * spsym));
      freq[a] = modem.demodulate(window);
    }
    for (std::size_t f = 0; f < nsc; ++f) {
      CVector y(na);
      for (std::size_t a = 0; a < na; ++a) y[a] = freq[a][f];
      const auto& h = use_estimated_channel ? h_est[f] : h_true[f];
      const auto result = detector->detect(y, h, n0);
      for (std::size_t k = 0; k < nc; ++k) decided[k][sym * nsc + f] = result.indices[k];
    }
  }

  for (std::size_t k = 0; k < nc; ++k) {
    const BitVector payload = codec.decode(decided[k], nsym);
    if (payload == frames[k].payload) ++out.clients_ok;
  }
  return out;
}

TEST(Integration, TimeDomainUplinkWithPerfectCsi) {
  const auto run = run_time_domain_uplink(4, 2, 16, 30.0, 1, /*estimated=*/false);
  EXPECT_EQ(run.clients_ok, 2u);
}

TEST(Integration, TimeDomainUplinkWithEstimatedChannel) {
  const auto run = run_time_domain_uplink(4, 2, 16, 30.0, 2, /*estimated=*/true);
  EXPECT_EQ(run.clients_ok, 2u);
  // LS estimation error should sit near the noise floor (N0 = 1e-3).
  EXPECT_LT(run.channel_est_error, 20.0 * channel::noise_variance_for_snr_db(30.0));
}

TEST(Integration, FourClientTimeDomainUplink) {
  const auto run = run_time_domain_uplink(4, 4, 16, 35.0, 3, /*estimated=*/true);
  EXPECT_EQ(run.clients_ok, 4u);
}

TEST(Integration, EstimationErrorScalesWithNoise) {
  const auto low = run_time_domain_uplink(4, 2, 4, 10.0, 4, true);
  const auto high = run_time_domain_uplink(4, 2, 4, 30.0, 4, true);
  EXPECT_GT(low.channel_est_error, 10.0 * high.channel_est_error);
}

TEST(Integration, HopelessSnrFailsGracefully) {
  // Failure injection: at -10 dB every frame must fail -- but the whole
  // pipeline should survive and report it, not crash.
  const auto run = run_time_domain_uplink(4, 4, 64, -10.0, 5, true);
  EXPECT_EQ(run.clients_ok, 0u);
}

TEST(Integration, CodedBeatsUncodedAtModerateSnr) {
  // The coding chain must actually buy link margin: at an SNR where the
  // raw 16-QAM decisions still err at the percent level, the decoded
  // payload BER must be far lower (and strongly monotone in SNR).
  channel::RayleighChannel ch(4, 2);
  const Constellation& c = Constellation::qam(16);
  const auto det = DetectorSpec::parse("geosphere").create(c);

  link::LinkScenario scenario;
  scenario.frame.qam_order = 16;
  scenario.frame.payload_bytes = 100;
  scenario.snr_db = 14.0;
  link::LinkSimulator sim14(ch, scenario);
  const auto stats14 = sim14.run(*det, DecisionMode::kHard, 40, /*seed=*/6);
  EXPECT_LT(stats14.ber(), 0.02);

  scenario.snr_db = 5.0;
  link::LinkSimulator sim5(ch, scenario);
  const auto stats5 = sim5.run(*det, DecisionMode::kHard, 40, /*seed=*/6);
  EXPECT_GT(stats5.ber(), 4.0 * std::max(stats14.ber(), 1e-4));
}

TEST(Integration, TraceReplayMatchesLiveEnsembleStatistics) {
  // Record a trace from the ensemble, replay it through the link simulator
  // and confirm the detector sees the same conditioning environment.
  channel::TestbedConfig tc;
  tc.clients = 2;
  tc.ap_antennas = 2;
  channel::TestbedEnsemble live(tc);
  Rng rec(7);
  channel::TraceChannelModel trace(channel::record_trace(live, 200, 48, rec));

  const Constellation& c = Constellation::qam(16);
  const auto det_a = DetectorSpec::parse("geosphere").create(c);
  const auto det_b = DetectorSpec::parse("geosphere").create(c);
  link::LinkScenario scenario;
  scenario.frame.qam_order = 16;
  scenario.frame.payload_bytes = 100;
  scenario.snr_db = 18.0;

  link::LinkSimulator sim_live(live, scenario);
  link::LinkSimulator sim_trace(trace, scenario);
  const double fer_live = sim_live.run(*det_a, DecisionMode::kHard, 50, /*seed=*/8).fer();
  const double fer_trace = sim_trace.run(*det_b, DecisionMode::kHard, 50, /*seed=*/8).fer();
  EXPECT_NEAR(fer_live, fer_trace, 0.25);  // Same environment, coarse match.
}

}  // namespace
}  // namespace geosphere

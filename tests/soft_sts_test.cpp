// Single-tree-search soft output (SoftGeosphereStsDetector):
//  * LLRs match the brute-force max-log ground truth, and are bit-identical
//    to the repeated-tree-search reference detector -- including under
//    clamp saturation -- for every registry QAM.
//  * Hard decisions are bit-identical to the hard Geosphere ML detector.
//  * DetectionStats counters prove the collapse: ONE enumeration pass per
//    vector (tree_searches == 1) vs 1 + streams*Q for the reference.
//  * Batched solves are bit-identical to the per-vector loop, including
//    the new counters, on every kernel tier / lane policy.
#include "detect/soft_sts.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <string>

#include "common/db.h"
#include "common/rng.h"
#include "detect/soft_output.h"
#include "detect/sphere/simd/dispatch.h"
#include "detect/sphere/sphere_decoder.h"
#include "test_util.h"

namespace geosphere {
namespace {

using geosphere::testing::random_channel;
using geosphere::testing::random_indices;
using geosphere::testing::transmit;

/// Brute-force max-log LLRs for small problems: the ground truth.
std::vector<double> exhaustive_llrs(const CVector& y, const linalg::CMatrix& h,
                                    const Constellation& c, double n0, double clamp) {
  const std::size_t nc = h.cols();
  const unsigned bits = c.bits_per_symbol();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> min0(nc * bits, kInf);
  std::vector<double> min1(nc * bits, kInf);

  std::vector<unsigned> idx(nc, 0);
  std::vector<std::uint8_t> sym_bits(bits);
  for (;;) {
    const double d = geosphere::testing::hypothesis_distance_sq(y, h, c, idx);
    for (std::size_t k = 0; k < nc; ++k) {
      c.bits_from_index(idx[k], sym_bits.data());
      for (unsigned b = 0; b < bits; ++b) {
        auto& slot = sym_bits[b] ? min1[k * bits + b] : min0[k * bits + b];
        slot = std::min(slot, d);
      }
    }
    std::size_t pos = 0;
    while (pos < nc && ++idx[pos] == c.order()) {
      idx[pos] = 0;
      ++pos;
    }
    if (pos == nc) break;
  }

  std::vector<double> llrs(nc * bits);
  for (std::size_t i = 0; i < llrs.size(); ++i) {
    const double raw = (min1[i] - min0[i]) / n0;
    llrs[i] = std::clamp(raw, -clamp, clamp);
  }
  return llrs;
}

/// One y_batch whose columns are independent transmissions through `h`.
linalg::CMatrix make_batch(Rng& rng, const linalg::CMatrix& h, const Constellation& c,
                           std::size_t count, double n0) {
  linalg::CMatrix y_batch(h.rows(), count);
  for (std::size_t v = 0; v < count; ++v) {
    const auto sent = random_indices(rng, c, h.cols());
    y_batch.set_col(v, transmit(rng, h, c, sent, n0));
  }
  return y_batch;
}

void expect_same_stats(const DetectionStats& a, const DetectionStats& b,
                       const std::string& who) {
  EXPECT_EQ(a.ped_computations, b.ped_computations) << who;
  EXPECT_EQ(a.visited_nodes, b.visited_nodes) << who;
  EXPECT_EQ(a.lb_lookups, b.lb_lookups) << who;
  EXPECT_EQ(a.lb_prunes, b.lb_prunes) << who;
  EXPECT_EQ(a.slicer_ops, b.slicer_ops) << who;
  EXPECT_EQ(a.queue_ops, b.queue_ops) << who;
  EXPECT_EQ(a.tree_searches, b.tree_searches) << who;
  EXPECT_EQ(a.counter_updates, b.counter_updates) << who;
}

TEST(SoftSts, MatchesExhaustiveMaxLog) {
  for (const unsigned order : {4u, 16u}) {
    const Constellation& c = Constellation::qam(order);
    SoftGeosphereStsDetector sts(c, 30.0);
    Rng rng(order);
    const double n0 = db_to_lin(-12.0);
    for (int trial = 0; trial < 20; ++trial) {
      const auto h = random_channel(rng, 4, 3);
      const auto sent = random_indices(rng, c, 3);
      const CVector y = transmit(rng, h, c, sent, n0);
      const auto result = sts.soft()->detect_soft(y, h, n0);
      const auto expected = exhaustive_llrs(y, h, c, n0, 30.0);
      ASSERT_EQ(result.llrs.size(), expected.size());
      for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_NEAR(result.llrs[i], expected[i], 1e-6 + 1e-6 * std::abs(expected[i]))
            << "order=" << order << " trial=" << trial << " bit=" << i;
    }
  }
}

// The tentpole parity claim: one enumeration pass loses NOTHING relative
// to the 1 + streams*Q repeated searches -- every LLR is bit-identical,
// whether or not the counter-hypothesis saturates at the clamp.
TEST(SoftSts, LlrsBitIdenticalToRepeatedTreeSearch) {
  for (const unsigned order : {4u, 16u, 64u, 256u}) {
    const Constellation& c = Constellation::qam(order);
    // A tight clamp at high SNR forces saturation on many bits; the loose
    // clamp exercises the exact-delta path. Both must agree bit-for-bit.
    for (const double clamp : {30.0, 4.0}) {
      SoftGeosphereStsDetector sts(c, clamp);
      SoftGeosphereDetector repeated(c, clamp);
      Rng rng(order + static_cast<unsigned>(clamp));
      const double n0 = db_to_lin(order >= 64 ? -22.0 : -14.0);
      const int trials = order == 256 ? 6 : 12;
      for (int trial = 0; trial < trials; ++trial) {
        const auto h = random_channel(rng, 4, 4);
        const auto sent = random_indices(rng, c, 4);
        const CVector y = transmit(rng, h, c, sent, n0);
        const auto a = sts.soft()->detect_soft(y, h, n0);
        const auto b = repeated.soft()->detect_soft(y, h, n0);
        ASSERT_EQ(a.indices, b.indices) << "order=" << order << " trial=" << trial;
        ASSERT_EQ(a.llrs.size(), b.llrs.size());
        for (std::size_t i = 0; i < a.llrs.size(); ++i)
          EXPECT_EQ(a.llrs[i], b.llrs[i])
              << "order=" << order << " clamp=" << clamp << " trial=" << trial
              << " bit=" << i;
      }
    }
  }
}

// Acceptance: sts hard decisions bit-identical to geosphere's ML decisions
// for every registry QAM (solve and solve_soft agree with each other too).
TEST(SoftSts, HardDecisionsMatchGeosphereMl) {
  for (const unsigned order : {4u, 16u, 64u, 256u}) {
    const Constellation& c = Constellation::qam(order);
    SoftGeosphereStsDetector sts(c);
    const auto geo = sphere::make_geosphere(c);
    Rng rng(order + 7);
    const double n0 = db_to_lin(order >= 64 ? -20.0 : -12.0);
    const int trials = order == 256 ? 6 : 12;
    for (int trial = 0; trial < trials; ++trial) {
      const auto h = random_channel(rng, 4, 4);
      const auto sent = random_indices(rng, c, 4);
      const CVector y = transmit(rng, h, c, sent, n0);
      const auto hard = sts.detect(y, h, n0);
      const auto ml = geo->detect(y, h, n0);
      EXPECT_EQ(hard.indices, ml.indices) << "order=" << order << " trial=" << trial;
      const auto soft = sts.soft()->detect_soft(y, h, n0);
      EXPECT_EQ(soft.indices, ml.indices) << "order=" << order << " trial=" << trial;
    }
  }
}

// The whole point of the detector, measured: one enumeration pass per
// vector, vs 1 + streams*Q for the repeated-tree-search reference.
TEST(SoftSts, OneTreeSearchPerVector) {
  const Constellation& c = Constellation::qam(64);
  SoftGeosphereStsDetector sts(c);
  SoftGeosphereDetector repeated(c);
  Rng rng(99);
  const double n0 = db_to_lin(-20.0);
  const auto h = random_channel(rng, 4, 4);
  const auto sent = random_indices(rng, c, 4);
  const CVector y = transmit(rng, h, c, sent, n0);

  const auto a = sts.soft()->detect_soft(y, h, n0);
  EXPECT_EQ(a.stats.tree_searches, 1u);
  EXPECT_GT(a.stats.counter_updates, 0u);

  const auto b = repeated.soft()->detect_soft(y, h, n0);
  EXPECT_EQ(b.stats.tree_searches, 1u + 4u * 6u);
  EXPECT_EQ(b.stats.counter_updates, 0u);

  // Hard solves are one plain search each, for both detectors.
  EXPECT_EQ(sts.detect(y, h, n0).stats.tree_searches, 1u);
  EXPECT_EQ(repeated.detect(y, h, n0).stats.tree_searches, 1u);
}

// Satellite: clamp saturation must be exact (+/- llr_clamp, not merely
// near it) and byte-identical across the per-vector, batched, and
// lockstep-lane (GEOSPHERE_LANES) paths -- for BOTH soft detectors.
TEST(SoftSts, ClampSaturationIdenticalAcrossPaths) {
  struct LaneGuard {
    explicit LaneGuard(std::size_t lanes) { sphere::simd::set_lane_override(lanes); }
    ~LaneGuard() { sphere::simd::set_lane_override(0); }
  };

  const Constellation& c = Constellation::qam(16);
  const double clamp = 3.0;  // Tight: at 20 dB almost every bit saturates.
  const double n0 = db_to_lin(-20.0);
  const std::size_t count = 9;

  Rng rng(4242);
  const auto h = random_channel(rng, 4, 4);
  const linalg::CMatrix y_batch = make_batch(rng, h, c, count, n0);

  for (const char* which : {"soft-geosphere", "soft-geosphere-sts"}) {
    const bool is_sts = std::string(which) == "soft-geosphere-sts";
    const auto make = [&]() -> std::unique_ptr<Detector> {
      if (is_sts) return std::make_unique<SoftGeosphereStsDetector>(c, clamp);
      return std::make_unique<SoftGeosphereDetector>(c, clamp);
    };

    // Reference: per-vector solve_soft on each column.
    const auto ref_det = make();
    ref_det->prepare(h, n0);
    std::vector<double> ref_llrs;
    std::size_t saturated = 0;
    CVector y;
    SoftDetectionResult per;
    for (std::size_t v = 0; v < count; ++v) {
      y_batch.col_into(v, y);
      ref_det->soft()->solve_soft(y, per);
      for (const double l : per.llrs) {
        ref_llrs.push_back(l);
        if (l == clamp || l == -clamp) ++saturated;
      }
    }
    // The tight clamp must actually bite, and saturation must be EXACT.
    EXPECT_GT(saturated, ref_llrs.size() / 2) << which;
    for (const double l : ref_llrs) EXPECT_LE(std::abs(l), clamp) << which;

    // Batched path, default lane policy.
    const auto batch_det = make();
    batch_det->prepare(h, n0);
    SoftBatchResult batch;
    batch_det->soft()->solve_soft_batch(y_batch, batch);
    ASSERT_EQ(batch.llrs.size(), ref_llrs.size()) << which;
    for (std::size_t i = 0; i < ref_llrs.size(); ++i)
      EXPECT_EQ(batch.llrs[i], ref_llrs[i]) << which << " bit=" << i;

    // Batched path under forced lockstep lanes.
    {
      LaneGuard lanes(4);
      const auto lane_det = make();
      lane_det->prepare(h, n0);
      SoftBatchResult lane_batch;
      lane_det->soft()->solve_soft_batch(y_batch, lane_batch);
      ASSERT_EQ(lane_batch.llrs.size(), ref_llrs.size()) << which;
      for (std::size_t i = 0; i < ref_llrs.size(); ++i)
        EXPECT_EQ(lane_batch.llrs[i], ref_llrs[i]) << which << " lanes bit=" << i;
      expect_same_stats(lane_batch.stats, batch.stats, std::string(which) + " lanes");
    }
  }
}

// Batch-vs-loop parity including the NEW stats counters (the registry-wide
// batch_solve_test covers decisions; this pins tree_searches and
// counter_updates, which only the soft paths exercise).
TEST(SoftSts, SoftBatchMatchesLoopIncludingNewCounters) {
  const Constellation& c = Constellation::qam(16);
  SoftGeosphereStsDetector sts(c);
  Rng rng(808);
  const double n0 = db_to_lin(-14.0);
  const auto h = random_channel(rng, 4, 4);
  const std::size_t count = 7;
  const linalg::CMatrix y_batch = make_batch(rng, h, c, count, n0);

  sts.prepare(h, n0);
  SoftBatchResult batch;
  sts.soft()->solve_soft_batch(y_batch, batch);

  DetectionStats loop_stats;
  CVector y;
  SoftDetectionResult per;
  for (std::size_t v = 0; v < count; ++v) {
    y_batch.col_into(v, y);
    sts.soft()->solve_soft(y, per);
    loop_stats += per.stats;
    for (std::size_t k = 0; k < batch.streams; ++k)
      EXPECT_EQ(batch.indices[v * batch.streams + k], per.indices[k]) << "v=" << v;
    const unsigned bits = c.bits_per_symbol();
    for (std::size_t i = 0; i < batch.streams * bits; ++i)
      EXPECT_EQ(batch.llrs[v * batch.streams * bits + i], per.llrs[i]) << "v=" << v;
  }
  expect_same_stats(batch.stats, loop_stats, "sts batch-vs-loop");
  EXPECT_EQ(batch.stats.tree_searches, count);  // ONE search per vector.
  EXPECT_EQ(batch.stats.batch_calls, 1u);
}

// Re-preparing with different shapes must fully reshape the STS tables.
TEST(SoftSts, ReprepareAcrossShapesIsSafe) {
  const Constellation& c = Constellation::qam(16);
  SoftGeosphereStsDetector reused(c);
  SoftGeosphereDetector reference(c);
  Rng rng(515);
  const double n0 = db_to_lin(-12.0);
  for (const std::size_t nc : {3u, 2u, 4u, 3u}) {
    const auto h = random_channel(rng, 4, nc);
    const auto sent = random_indices(rng, c, nc);
    const CVector y = transmit(rng, h, c, sent, n0);
    const auto a = reused.soft()->detect_soft(y, h, n0);
    const auto b = reference.soft()->detect_soft(y, h, n0);
    EXPECT_EQ(a.indices, b.indices) << "nc=" << nc;
    for (std::size_t i = 0; i < a.llrs.size(); ++i)
      EXPECT_EQ(a.llrs[i], b.llrs[i]) << "nc=" << nc << " bit=" << i;
  }
}

}  // namespace
}  // namespace geosphere

#include <gtest/gtest.h>

#include "channel/rayleigh.h"
#include "channel/testbed_ensemble.h"
#include "detect/spec.h"
#include "link/link_simulator.h"
#include "link/rate_adapt.h"
#include "link/snr_search.h"
#include "link/throughput.h"
#include "link/user_selection.h"

namespace geosphere::link {
namespace {

LinkScenario small_scenario(unsigned qam, double snr_db) {
  LinkScenario s;
  s.frame.qam_order = qam;
  s.frame.payload_bytes = 100;  // Keep the tests fast.
  s.snr_db = snr_db;
  return s;
}

TEST(Throughput, PhyRateMatches80211Numbers) {
  // Single stream, 64-QAM rate 3/4 = the classic 54 Mbps 802.11a rate.
  EXPECT_NEAR(phy_rate_mbps(1, 64, coding::CodeRate::kThreeQuarters), 54.0, 1e-9);
  // 16-QAM rate 1/2 = 24 Mbps; scales linearly in streams.
  EXPECT_NEAR(phy_rate_mbps(4, 16, coding::CodeRate::kHalf), 4 * 24.0, 1e-9);
}

TEST(Throughput, NetThroughputScalesWithFer) {
  const std::vector<double> fer{0.5, 0.0};
  const double got = net_throughput_mbps(2, 4, coding::CodeRate::kHalf, fer);
  const double per_client = phy_rate_mbps(1, 4, coding::CodeRate::kHalf);
  EXPECT_NEAR(got, per_client * 1.5, 1e-9);
  EXPECT_THROW(net_throughput_mbps(3, 4, coding::CodeRate::kHalf, fer),
               std::invalid_argument);
}

TEST(LinkSimulator, HighSnrIsErrorFree) {
  channel::RayleighChannel ch(4, 2);
  LinkSimulator sim(ch, small_scenario(16, 45.0));
  const Constellation& c = Constellation::qam(16);
  const auto det = DetectorSpec::parse("geosphere").create(c);
  const LinkStats stats = sim.run(*det, DecisionMode::kHard, 10, /*seed=*/1);
  EXPECT_EQ(stats.frames, 10u);
  EXPECT_DOUBLE_EQ(stats.fer(), 0.0);
  EXPECT_EQ(stats.bit_errors, 0u);
  EXPECT_GT(stats.detection_calls, 0u);
}

TEST(LinkSimulator, FerMonotoneInSnr) {
  channel::RayleighChannel ch(4, 4);
  const Constellation& c = Constellation::qam(16);
  const auto det = DetectorSpec::parse("geosphere").create(c);

  double prev_fer = 1.1;
  for (const double snr : {6.0, 14.0, 30.0}) {
    LinkSimulator sim(ch, small_scenario(16, snr));
    const double fer = sim.run(*det, DecisionMode::kHard, 40, /*seed=*/2).fer();
    EXPECT_LE(fer, prev_fer + 0.1) << "FER not (statistically) decreasing at " << snr;
    prev_fer = fer;
  }
  EXPECT_LT(prev_fer, 0.2);
}

TEST(LinkSimulator, GeosphereBeatsZfOnIllConditionedEnsemble) {
  // The paper's headline effect, end to end through coding and OFDM.
  channel::TestbedConfig tc;
  tc.ap_antennas = 4;
  tc.clients = 4;
  channel::TestbedEnsemble ch(tc);
  const Constellation& c = Constellation::qam(16);
  const auto geo = DetectorSpec::parse("geosphere").create(c);
  const auto zf = DetectorSpec::parse("zf").create(c);

  LinkSimulator sim(ch, small_scenario(16, 20.0));
  // Identical draws for the two detectors: same seed, per-frame seeding.
  const double fer_geo = sim.run(*geo, DecisionMode::kHard, 60, /*seed=*/3).fer();
  const double fer_zf = sim.run(*zf, DecisionMode::kHard, 60, /*seed=*/3).fer();
  EXPECT_LT(fer_geo, fer_zf);
}

TEST(LinkSimulator, ComplexityMetricsPopulated) {
  channel::RayleighChannel ch(4, 2);
  const Constellation& c = Constellation::qam(16);
  const auto geo = DetectorSpec::parse("geosphere").create(c);
  LinkSimulator sim(ch, small_scenario(16, 20.0));
  const LinkStats stats = sim.run(*geo, DecisionMode::kHard, 5, /*seed=*/4);
  EXPECT_GT(stats.avg_ped_per_subcarrier(), 0.0);
  EXPECT_GT(stats.avg_visited_nodes_per_subcarrier(), 0.0);
  // Lower bound: at least one slice per level per call.
  EXPECT_GE(stats.avg_ped_per_subcarrier(), 2.0);
}

TEST(LinkSimulator, DetectorConstellationMismatchThrows) {
  channel::RayleighChannel ch(2, 2);
  const auto det = DetectorSpec::parse("zf").create(Constellation::qam(64));
  LinkSimulator sim(ch, small_scenario(16, 20.0));
  EXPECT_THROW(sim.run(*det, DecisionMode::kHard, 1, /*seed=*/5), std::invalid_argument);
}

TEST(LinkSimulator, SoftModeNeedsSoftCapableDetector) {
  // The unified mode-dispatched path must reject DecisionMode::kSoft for a
  // detector with no soft() interface, loudly and before any simulation.
  channel::RayleighChannel ch(2, 2);
  const auto hard = DetectorSpec::parse("zf").create(Constellation::qam(16));
  LinkSimulator sim(ch, small_scenario(16, 20.0));
  EXPECT_THROW(sim.run(*hard, DecisionMode::kSoft, 1, /*seed=*/5), std::invalid_argument);

  const auto soft = DetectorSpec::parse("soft-geosphere").create(Constellation::qam(16));
  EXPECT_NE(soft->soft(), nullptr);
  const LinkStats stats = sim.run(*soft, DecisionMode::kSoft, 2, /*seed=*/5);
  EXPECT_EQ(stats.frames, 2u);
}

TEST(RateAdapt, PicksLowOrderAtLowSnrHighOrderAtHighSnr) {
  channel::RayleighChannel ch(4, 2);
  LinkScenario base = small_scenario(16, 0.0);

  base.snr_db = 2.0;
  const DetectorSpec geo = DetectorSpec::parse("geosphere");
  const RateChoice low = best_rate(ch, base, geo, 25, 7, {4, 16, 64});
  base.snr_db = 38.0;
  const RateChoice high = best_rate(ch, base, geo, 25, 7, {4, 16, 64});
  EXPECT_LT(low.qam_order, high.qam_order);
  EXPECT_EQ(high.qam_order, 64u);
  EXPECT_GT(high.throughput_mbps, low.throughput_mbps);
}

TEST(SnrSearch, FindsTargetFerOperatingPoint) {
  channel::RayleighChannel ch(4, 2);
  LinkScenario base = small_scenario(16, 0.0);
  SnrSearchConfig cfg;
  cfg.probe_frames = 30;
  cfg.iterations = 7;
  const double snr = find_snr_for_fer(ch, base, DetectorSpec::parse("geosphere"), cfg, 11);
  EXPECT_GT(snr, 2.0);
  EXPECT_LT(snr, 40.0);

  // Verify the FER at the found point is in a sane band around the target.
  base.snr_db = snr;
  LinkSimulator sim(ch, base);
  const auto det = DetectorSpec::parse("geosphere").create(Constellation::qam(16));
  const double fer = sim.run(*det, DecisionMode::kHard, 120, /*seed=*/12).fer();
  EXPECT_GT(fer, 0.01);
  EXPECT_LT(fer, 0.45);
}

TEST(UserSelection, SnrRange) {
  const std::vector<double> snrs{12.0, 18.0, 21.0, 25.0, 31.0};
  const auto sel = select_in_snr_range(snrs, 20.0, 5.0);
  EXPECT_EQ(sel, (std::vector<std::size_t>{1, 2, 3}));
  EXPECT_TRUE(select_in_snr_range(snrs, 50.0, 2.0).empty());
}

TEST(UserSelection, RandomSubsetProperties) {
  Rng rng(13);
  for (int t = 0; t < 50; ++t) {
    const auto sel = select_random(10, 4, rng);
    EXPECT_EQ(sel.size(), 4u);
    for (std::size_t i = 1; i < sel.size(); ++i) EXPECT_LT(sel[i - 1], sel[i]);
    for (const auto v : sel) EXPECT_LT(v, 10u);
  }
  EXPECT_THROW(select_random(3, 4, rng), std::invalid_argument);
}

}  // namespace
}  // namespace geosphere::link

// Strict-parse suite for the serving layer's declarative surface
// (serve::CellSpec / serve::ServeSpec), in the same spirit as
// detect_spec_test / channel_spec_test: canonical round-trips, default
// filling, and loud rejection -- every parse error names the valid keys,
// and channel/detector typos surface those registries' valid forms.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "serve/spec.h"

namespace geosphere::serve {
namespace {

/// EXPECT that parsing `text` throws std::invalid_argument whose message
/// contains `needle` (and always the valid-keys listing).
void expect_reject(const std::string& text, const std::string& needle) {
  try {
    (void)ServeSpec::parse(text);
    FAIL() << "expected rejection of \"" << text << "\"";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(needle), std::string::npos)
        << "message \"" << what << "\" lacks \"" << needle << "\"";
    EXPECT_NE(what.find("valid keys:"), std::string::npos)
        << "message \"" << what << "\" lacks the valid-keys listing";
  }
}

TEST(CellSpec, DefaultsAndCanonicalText) {
  const CellSpec spec = CellSpec::parse("users=8");
  EXPECT_EQ(spec.users, 8u);
  EXPECT_EQ(spec.antennas, 4u);
  EXPECT_DOUBLE_EQ(spec.load, 0.5);
  EXPECT_EQ(spec.channel, "rayleigh");
  EXPECT_EQ(spec.detector, "geosphere");
  EXPECT_EQ(spec.qams, (std::vector<unsigned>{4, 16, 64}));
  EXPECT_EQ(spec.code, "1/2");
  EXPECT_EQ(spec.text(),
            "users=8,antennas=4,load=0.5,channel=rayleigh,detector=geosphere,"
            "code=1/2,snr=20.0,spread=5.0,window=3.0,qams=4|16|64,payload=500");
}

TEST(CellSpec, RoundTripsAndCanonicalizesSpellings) {
  // Equivalent spellings (trailing zeros, detector defaults filled in)
  // collapse onto one canonical text, and parse(text()) is a fixed point.
  const CellSpec a = CellSpec::parse("load=0.50,detector=kbest:8,snr=22.0,users=0012");
  const CellSpec b = CellSpec::parse(a.text());
  EXPECT_EQ(a.text(), b.text());
  EXPECT_EQ(a.users, 12u);
  EXPECT_NE(a.text().find("load=0.5,"), std::string::npos);
  EXPECT_NE(a.text().find("snr=22.0,"), std::string::npos);
  EXPECT_NE(a.text().find("detector=kbest:8"), std::string::npos);
}

TEST(CellSpec, CodeKeyCanonicalizesAndDefaultsApply) {
  EXPECT_EQ(CellSpec::parse("code=3/4").code, "3/4");
  EXPECT_EQ(CellSpec::parse("code=none").code, "none");

  // Defaults-aware parse: unspecified keys take the caller's defaults
  // (CLI --code/--detector), explicit per-cell keys still win.
  CellSpec defaults;
  defaults.code = "2/3";
  defaults.detector = "mmse";
  EXPECT_EQ(CellSpec::parse("users=8", defaults).code, "2/3");
  EXPECT_EQ(CellSpec::parse("users=8", defaults).detector, "mmse");
  EXPECT_EQ(CellSpec::parse("code=1/2", defaults).code, "1/2");
  const ServeSpec multi = ServeSpec::parse("users=4;users=2,code=3/4", defaults);
  EXPECT_EQ(multi.cells[0].code, "2/3");
  EXPECT_EQ(multi.cells[1].code, "3/4");
}

TEST(ServeSpec, BadCodeSurfacesRegistryForms) {
  expect_reject("code=1/3", "1/3");
  try {
    (void)ServeSpec::parse("code=1/3");
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("none"), std::string::npos) << what;
    EXPECT_NE(what.find("3/4"), std::string::npos) << what;
  }
}

TEST(ServeSpec, ParsesMultipleCellsAndRoundTrips) {
  const ServeSpec spec =
      ServeSpec::parse("users=32,load=0.6;users=8,detector=mmse,qams=16");
  ASSERT_EQ(spec.cells.size(), 2u);
  EXPECT_EQ(spec.cells[0].users, 32u);
  EXPECT_EQ(spec.cells[1].detector, "mmse");
  EXPECT_EQ(spec.cells[1].qams, (std::vector<unsigned>{16}));
  EXPECT_EQ(ServeSpec::parse(spec.text()).text(), spec.text());
}

TEST(ServeSpec, RejectsMalformedCells) {
  expect_reject("", "empty spec");
  expect_reject("users=4;;users=2", "empty cell");
  expect_reject("users", "expected key=value");
  expect_reject("=4", "expected key=value");
  expect_reject("frobnicate=1", "unknown key");
  expect_reject("users=4,users=8", "duplicate key");
}

TEST(ServeSpec, RejectsOutOfRangeValues) {
  expect_reject("users=0", "users must be an integer in [1, 1000000]");
  expect_reject("antennas=65", "antennas must be an integer in [1, 64]");
  expect_reject("load=0", "load must be in (0, 1]");
  expect_reject("load=1.5", "load must be in (0, 1]");
  expect_reject("load=0.5.5", "load must be a decimal number");
  expect_reject("snr=2e1", "snr must be a decimal number");
  expect_reject("snr=20dB", "snr must be a decimal number");
  expect_reject("spread=-1", "spread must be >= 0");
  expect_reject("window=0", "window must be > 0");
  expect_reject("qams=32", "qams entries must be 4, 16, 64 or 256");
  expect_reject("qams=", "qams entry must be an integer");
  expect_reject("payload=0", "payload must be an integer");
}

TEST(ServeSpec, BadChannelAndDetectorSurfaceRegistryForms) {
  // The nested registries' own valid-forms diagnostics must ride along in
  // the serve error, so one message explains the fix.
  expect_reject("channel=nosuch", "nosuch");
  try {
    (void)ServeSpec::parse("channel=nosuch");
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("rayleigh"), std::string::npos) << e.what();
  }
  expect_reject("detector=nosuch", "nosuch");
  try {
    (void)ServeSpec::parse("detector=nosuch");
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("geosphere"), std::string::npos) << e.what();
  }
}

TEST(ServeSpec, RejectsFixedDimsChannels) {
  // Trace channels pin their own client count; the scheduler varies the
  // per-TTI stream count, so a servable cell cannot use one.
  expect_reject("channel=trace:tests/golden/does_not_matter.geotrace",
                "fixes its own dimensions");
}

}  // namespace
}  // namespace geosphere::serve

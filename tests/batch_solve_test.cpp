// Tests for the batched third phase of the detection contract
// (solve_batch / solve_soft_batch):
//  * solve_batch(Y) is bit-exactly a loop of solve() over Y's columns --
//    same decisions, same summed counters -- for EVERY registry detector
//    (overridden batch kernels and the base-class loop fallback alike),
//    across batch sizes {1, 3, ofdm_symbols},
//  * solve_soft_batch matches a loop of solve_soft() including every LLR
//    bit,
//  * changing the batch size (and the stream count) between prepares leaks
//    no state,
//  * batch accounting: a batch of N counts as N detections and ONE
//    batch_call, so batched and per-vector runs report identical
//    detection_calls / ped_evaluations,
//  * the batched LinkSimulator reproduces the recorded pre-batching (PR 4
//    per-vector) LinkStats bit-for-bit, for any thread count.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "channel/spec.h"
#include "common/db.h"
#include "common/rng.h"
#include "detect/spec.h"
#include "link/link_simulator.h"
#include "phy/frame.h"
#include "sim/engine.h"
#include "test_util.h"

namespace geosphere {
namespace {

using geosphere::testing::random_channel;
using geosphere::testing::random_indices;
using geosphere::testing::transmit;

/// Every registry detector in a creatable spec form (required parameters
/// get a representative value).
std::vector<std::string> all_registry_specs() {
  std::vector<std::string> out;
  for (const DetectorInfo& info : detector_registry())
    out.push_back(info.param_required ? info.name + ":8" : info.name);
  return out;
}

void expect_same_stats(const DetectionStats& a, const DetectionStats& b,
                       const std::string& who) {
  EXPECT_EQ(a.ped_computations, b.ped_computations) << who;
  EXPECT_EQ(a.visited_nodes, b.visited_nodes) << who;
  EXPECT_EQ(a.lb_lookups, b.lb_lookups) << who;
  EXPECT_EQ(a.lb_prunes, b.lb_prunes) << who;
  EXPECT_EQ(a.slicer_ops, b.slicer_ops) << who;
  EXPECT_EQ(a.queue_ops, b.queue_ops) << who;
  EXPECT_EQ(a.preprocess_calls, b.preprocess_calls) << who;
  EXPECT_EQ(a.tree_searches, b.tree_searches) << who;
  EXPECT_EQ(a.counter_updates, b.counter_updates) << who;
}

/// One received-vector batch: column v carries `streams` random symbols
/// through `h` plus noise, drawn exactly like the per-vector helpers.
linalg::CMatrix make_batch(Rng& rng, const linalg::CMatrix& h, const Constellation& c,
                           std::size_t count, double n0) {
  linalg::CMatrix y_batch(h.rows(), count);
  for (std::size_t v = 0; v < count; ++v) {
    const auto sent = random_indices(rng, c, h.cols());
    y_batch.set_col(v, transmit(rng, h, c, sent, n0));
  }
  return y_batch;
}

/// The number of received vectors one prepared subcarrier serves in the
/// link layer (the tentpole's batch size) for a small representative frame.
std::size_t link_batch_size() {
  phy::FrameConfig config;
  config.qam_order = 16;
  config.payload_bytes = 120;
  return phy::FrameCodec(config).ofdm_symbols_per_frame();
}

class BatchSolveRegistry : public ::testing::TestWithParam<std::string> {};

TEST_P(BatchSolveRegistry, BatchMatchesLoopBitExactly) {
  const DetectorSpec spec = DetectorSpec::parse(GetParam());
  const Constellation& c = Constellation::qam(16);
  const auto loop_det = spec.create(c);
  const auto batch_det = spec.create(c);
  const double n0 = db_to_lin(-14.0);

  Rng rng(909);
  CVector y;
  BatchResult batch;
  for (const std::size_t count : {std::size_t{1}, std::size_t{3}, link_batch_size()}) {
    ASSERT_GE(count, 1u);
    const auto h = random_channel(rng, 4, 3);
    const linalg::CMatrix y_batch = make_batch(rng, h, c, count, n0);

    loop_det->prepare(h, n0);
    batch_det->prepare(h, n0);

    // Reference: the loop the base-class fallback promises, via the public
    // per-vector API on a separate instance.
    std::vector<unsigned> ref_indices;
    DetectionStats ref_stats;
    for (std::size_t v = 0; v < count; ++v) {
      y_batch.col_into(v, y);
      const DetectionResult r = loop_det->solve(y);
      ref_indices.insert(ref_indices.end(), r.indices.begin(), r.indices.end());
      ref_stats += r.stats;
    }

    batch_det->solve_batch(y_batch, batch);
    EXPECT_EQ(batch.count, count) << spec.text();
    EXPECT_EQ(batch.streams, 3u) << spec.text();
    EXPECT_EQ(batch.indices, ref_indices) << spec.text() << " count=" << count;
    expect_same_stats(batch.stats, ref_stats, spec.text());
    // A batch of N is N detections but ONE batched invocation.
    EXPECT_EQ(batch.stats.batch_calls, 1u) << spec.text();
  }
}

TEST_P(BatchSolveRegistry, BatchSizeAndStreamChangesAcrossPreparesAreSafe) {
  // Same instance, alternating channels with different stream counts AND
  // different batch sizes: every per-batch workspace must be fully
  // re-shaped, so results equal those of a fresh instance.
  const DetectorSpec spec = DetectorSpec::parse(GetParam());
  const Constellation& c = Constellation::qam(16);
  const auto reused = spec.create(c);
  const double n0 = db_to_lin(-14.0);

  Rng rng(1010);
  const auto h3 = random_channel(rng, 4, 3);
  const auto h2 = random_channel(rng, 4, 2);
  const linalg::CMatrix big = make_batch(rng, h3, c, 7, n0);
  const linalg::CMatrix small = make_batch(rng, h2, c, 2, n0);

  const auto fresh_run = [&](const linalg::CMatrix& h, const linalg::CMatrix& y_batch) {
    const auto det = spec.create(c);
    det->prepare(h, n0);
    return det->solve_batch(y_batch);
  };
  const BatchResult fresh_big = fresh_run(h3, big);
  const BatchResult fresh_small = fresh_run(h2, small);

  reused->prepare(h3, n0);
  BatchResult out;
  reused->solve_batch(big, out);
  EXPECT_EQ(out.indices, fresh_big.indices) << spec.text();

  reused->prepare(h2, n0);  // 3 -> 2 streams, batch 7 -> 2.
  reused->solve_batch(small, out);
  EXPECT_EQ(out.indices, fresh_small.indices) << spec.text();
  expect_same_stats(out.stats, fresh_small.stats, spec.text());

  reused->prepare(h3, n0);  // ... and back up.
  reused->solve_batch(big, out);
  EXPECT_EQ(out.indices, fresh_big.indices) << spec.text();
  expect_same_stats(out.stats, fresh_big.stats, spec.text());
}

TEST_P(BatchSolveRegistry, SolveBatchBeforePrepareThrows) {
  const DetectorSpec spec = DetectorSpec::parse(GetParam());
  const auto det = spec.create(Constellation::qam(16));
  BatchResult out;
  EXPECT_THROW(det->solve_batch(linalg::CMatrix(4, 2), out), std::logic_error)
      << spec.text();
  if (SoftDetector* soft = det->soft()) {
    SoftBatchResult sout;
    EXPECT_THROW(soft->solve_soft_batch(linalg::CMatrix(4, 2), sout), std::logic_error)
        << spec.text();
  }
}

INSTANTIATE_TEST_SUITE_P(AllRegistryDetectors, BatchSolveRegistry,
                         ::testing::ValuesIn(all_registry_specs()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& ch : name)
                             if (ch == ':' || ch == '-') ch = '_';
                           return name;
                         });

TEST(BatchSolve, SoftBatchMatchesLoopBitExactlyIncludingLlrs) {
  const DetectorSpec spec = DetectorSpec::parse("soft-geosphere");
  const Constellation& c = Constellation::qam(16);
  const auto loop_det = spec.create(c);
  const auto batch_det = spec.create(c);
  const double n0 = db_to_lin(-12.0);

  Rng rng(1111);
  CVector y;
  SoftBatchResult batch;
  for (const std::size_t count : {std::size_t{1}, std::size_t{3}, link_batch_size()}) {
    const auto h = random_channel(rng, 4, 2);
    const linalg::CMatrix y_batch = make_batch(rng, h, c, count, n0);

    loop_det->prepare(h, n0);
    batch_det->prepare(h, n0);

    std::vector<unsigned> ref_indices;
    std::vector<double> ref_llrs;
    DetectionStats ref_stats;
    for (std::size_t v = 0; v < count; ++v) {
      y_batch.col_into(v, y);
      const SoftDetectionResult r = loop_det->soft()->solve_soft(y);
      ref_indices.insert(ref_indices.end(), r.indices.begin(), r.indices.end());
      ref_llrs.insert(ref_llrs.end(), r.llrs.begin(), r.llrs.end());
      ref_stats += r.stats;
    }

    batch_det->soft()->solve_soft_batch(y_batch, batch);
    EXPECT_EQ(batch.count, count);
    EXPECT_EQ(batch.streams, 2u);
    EXPECT_EQ(batch.indices, ref_indices) << "count=" << count;
    EXPECT_EQ(batch.llrs, ref_llrs) << "count=" << count;  // Bit-exact LLRs.
    expect_same_stats(batch.stats, ref_stats, "soft-geosphere");
    EXPECT_EQ(batch.stats.batch_calls, 1u);
  }
}

TEST(BatchSolve, HardBatchOfSoftDetectorMatchesLoop) {
  // The soft detector's hard solve_batch (unconstrained searches only).
  const DetectorSpec spec = DetectorSpec::parse("soft-geosphere");
  const Constellation& c = Constellation::qam(16);
  const auto det = spec.create(c);
  const auto loop_det = spec.create(c);
  const double n0 = db_to_lin(-12.0);

  Rng rng(1212);
  const auto h = random_channel(rng, 3, 2);
  const linalg::CMatrix y_batch = make_batch(rng, h, c, 5, n0);
  det->prepare(h, n0);
  loop_det->prepare(h, n0);

  const BatchResult batch = det->solve_batch(y_batch);
  CVector y;
  for (std::size_t v = 0; v < 5; ++v) {
    y_batch.col_into(v, y);
    const DetectionResult r = loop_det->solve(y);
    for (std::size_t k = 0; k < 2; ++k)
      EXPECT_EQ(batch.indices[v * 2 + k], r.indices[k]) << "v=" << v;
  }
}

TEST(BatchSolve, EmptyBatchIsWellDefined) {
  for (const char* name : {"zf", "geosphere"}) {
    const auto det = DetectorSpec::parse(name).create(Constellation::qam(16));
    Rng rng(1313);
    det->prepare(random_channel(rng, 4, 2), db_to_lin(-14.0));
    const BatchResult batch = det->solve_batch(linalg::CMatrix(4, 0));
    EXPECT_EQ(batch.count, 0u) << name;
    EXPECT_TRUE(batch.indices.empty()) << name;
    EXPECT_EQ(batch.stats.ped_computations, 0u) << name;
  }
}

TEST(BatchSolve, LinkAccountingCountsBatchOfNAsNDetections) {
  // The satellite's accounting contract: batched and per-vector paths
  // report identical detection_calls / ped work -- a batch of N counts as
  // N detections and one batch_call, and preparations are untouched.
  channel::ChannelSpec spec = channel::ChannelSpec::parse("rayleigh");
  link::LinkScenario scenario;
  scenario.frame.qam_order = 16;
  scenario.frame.payload_bytes = 100;
  scenario.snr_db = 18.0;
  const phy::FrameCodec codec(scenario.frame);
  const std::size_t nsc = scenario.frame.data_subcarriers;
  const std::size_t syms = codec.ofdm_symbols_per_frame();
  ASSERT_GE(syms, 2u);

  link::LinkSimulator sim(spec, 2, 4, scenario);
  const std::size_t frames = 3;
  for (const char* name : {"geosphere", "soft-geosphere"}) {
    const DetectorSpec ds = DetectorSpec::parse(name);
    const auto det = ds.create(Constellation::qam(16));
    const link::LinkStats stats = sim.run(*det, ds.decision(), frames, /*seed=*/7);
    EXPECT_EQ(stats.detection_calls, frames * nsc * syms) << name;
    EXPECT_EQ(stats.detection.batch_calls, frames * nsc) << name;
    EXPECT_EQ(stats.detection.preprocess_calls, frames * nsc) << name;
  }
}

/// The golden LinkStats below were recorded by running THIS scenario on the
/// PR 4 build (per-vector simulate_frame, before solve_batch existed). The
/// batched link layer must reproduce every counter bit-for-bit.
struct GoldenLink {
  const char* detector;
  std::size_t bit_errors, fe0, fe1;
  std::uint64_t ped, visited, slicer, lb_lookups, lb_prunes, queue;
};

TEST(BatchSolve, LinkStatsMatchPreBatchingGoldensBitForBit) {
  link::LinkScenario scenario;
  scenario.frame.qam_order = 16;
  scenario.frame.payload_bytes = 120;
  scenario.snr_db = 16.0;
  scenario.snr_jitter_db = 3.0;

  const auto chspec = channel::ChannelSpec::parse("kronecker:0.6");
  link::LinkSimulator sim(chspec, 2, 4, scenario);
  const Constellation& c = Constellation::qam(16);
  const std::size_t frames = 4;
  const std::uint64_t seed = 42;

  const GoldenLink goldens[] = {
      {"geosphere", 0, 0, 0, 4531, 4255, 4243, 8503, 8215, 8525},
      {"mmse-sic", 0, 0, 0, 0, 0, 4224, 0, 0, 0},
      {"soft-geosphere", 0, 0, 0, 153168, 43140, 55622, 139431, 41885, 180296},
  };
  for (const GoldenLink& g : goldens) {
    const DetectorSpec ds = DetectorSpec::parse(g.detector);
    const auto det = ds.create(c);
    const link::LinkStats s = sim.run(*det, ds.decision(), frames, seed);
    EXPECT_EQ(s.frames, frames) << g.detector;
    EXPECT_EQ(s.payload_bits, frames * 2 * scenario.frame.payload_bits()) << g.detector;
    EXPECT_EQ(s.bit_errors, g.bit_errors) << g.detector;
    EXPECT_EQ(s.client_frame_errors[0], g.fe0) << g.detector;
    EXPECT_EQ(s.client_frame_errors[1], g.fe1) << g.detector;
    EXPECT_EQ(s.detection.ped_computations, g.ped) << g.detector;
    EXPECT_EQ(s.detection.visited_nodes, g.visited) << g.detector;
    EXPECT_EQ(s.detection.slicer_ops, g.slicer) << g.detector;
    EXPECT_EQ(s.detection.lb_lookups, g.lb_lookups) << g.detector;
    EXPECT_EQ(s.detection.lb_prunes, g.lb_prunes) << g.detector;
    EXPECT_EQ(s.detection.queue_ops, g.queue) << g.detector;
    EXPECT_EQ(s.detection.preprocess_calls, frames * 48u) << g.detector;
    EXPECT_EQ(s.detection_calls, frames * 48u * 11u) << g.detector;
  }
}

TEST(BatchSolve, BatchedLinkIsThreadCountInvariant) {
  // The batched simulate_frame keeps the engine's bit-identical-for-any-
  // thread-count guarantee, including the new batch_calls counter.
  link::LinkScenario scenario;
  scenario.frame.qam_order = 16;
  scenario.frame.payload_bytes = 80;
  scenario.snr_db = 15.0;

  const auto chspec = channel::ChannelSpec::parse("kronecker:0.6");
  sim::Engine one(1);
  sim::Engine four(4);
  for (const char* name : {"geosphere", "soft-geosphere", "soft-geosphere-sts"}) {
    const DetectorSpec ds = DetectorSpec::parse(name);
    const link::LinkStats a = one.run_link(chspec, 2, 4, scenario, ds, 8, /*seed=*/5);
    const link::LinkStats b = four.run_link(chspec, 2, 4, scenario, ds, 8, /*seed=*/5);
    EXPECT_EQ(a.bit_errors, b.bit_errors) << name;
    EXPECT_EQ(a.client_frame_errors, b.client_frame_errors) << name;
    EXPECT_EQ(a.detection_calls, b.detection_calls) << name;
    EXPECT_EQ(a.detection.ped_computations, b.detection.ped_computations) << name;
    EXPECT_EQ(a.detection.batch_calls, b.detection.batch_calls) << name;
    EXPECT_EQ(a.detection.preprocess_calls, b.detection.preprocess_calls) << name;
    EXPECT_EQ(a.detection.tree_searches, b.detection.tree_searches) << name;
    EXPECT_EQ(a.detection.counter_updates, b.detection.counter_updates) << name;
  }
}

}  // namespace
}  // namespace geosphere

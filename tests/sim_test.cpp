// Tests for the experiment drivers and table output that the bench harness
// is built on.
#include <gtest/gtest.h>

#include <sstream>

#include "channel/rayleigh.h"
#include "detect/spec.h"
#include "sim/complexity_experiment.h"
#include "sim/conditioning_experiment.h"
#include "sim/engine.h"
#include "sim/table.h"
#include "sim/throughput_experiment.h"

namespace geosphere::sim {
namespace {

Engine& test_engine() {
  static Engine engine(2);
  return engine;
}

TEST(TablePrinter, AlignsAndFormats) {
  TablePrinter table({"name", "value"});
  table.add_row({"alpha", TablePrinter::fmt(1.2345, 2)});
  table.add_row({"a-much-longer-name", "x"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("1.23"), std::string::npos);
  EXPECT_NE(out.find("a-much-longer-name"), std::string::npos);
  // Header rule present.
  EXPECT_NE(out.find("----"), std::string::npos);
  // Short rows are padded, not truncated.
  TablePrinter padded({"a", "b", "c"});
  padded.add_row({"only-one"});
  std::ostringstream os2;
  padded.print(os2);
  EXPECT_NE(os2.str().find("only-one"), std::string::npos);
}

TEST(TablePrinter, FmtPrecision) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::fmt(3.14159, 0), "3");
  EXPECT_EQ(TablePrinter::fmt(-1.5, 1), "-1.5");
}

TEST(Conditioning, ProducesRequestedSeries) {
  ConditioningConfig config;
  config.sizes = {{2, 2}, {2, 4}};
  config.links = 20;
  config.subcarriers = 8;
  const auto series = run_conditioning(test_engine(), config);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].clients, 2u);
  EXPECT_EQ(series[0].antennas, 2u);
  EXPECT_EQ(series[0].kappa_sq_db.count(), 20u * 8u);
  EXPECT_EQ(series[1].lambda_db.count(), 20u * 8u);
  // Lambda is nonnegative by construction.
  EXPECT_GE(series[0].lambda_db.percentile(0.0), -1e-9);
}

TEST(Conditioning, DeterministicForFixedSeed) {
  ConditioningConfig config;
  config.sizes = {{2, 2}};
  config.links = 10;
  config.subcarriers = 4;
  const auto a = run_conditioning(test_engine(), config);
  const auto b = run_conditioning(test_engine(), config);
  EXPECT_DOUBLE_EQ(a[0].kappa_sq_db.percentile(0.5), b[0].kappa_sq_db.percentile(0.5));
}

TEST(ThroughputExperiment, ReportsBestRateChoice) {
  channel::RayleighChannel ch(4, 2);
  ThroughputConfig config;
  config.frames = 15;
  config.payload_bytes = 100;
  config.snr_jitter_db = 0.0;
  const auto point = measure_throughput(test_engine(), ch, "Geosphere",
                                        DetectorSpec::parse("geosphere"), 35.0, config);
  EXPECT_EQ(point.detector, "Geosphere");
  EXPECT_EQ(point.clients, 2u);
  EXPECT_EQ(point.antennas, 4u);
  EXPECT_EQ(point.best_qam, 64u);  // At 35 dB the densest candidate wins.
  EXPECT_NEAR(point.throughput_mbps, 72.0, 8.0);
  EXPECT_LT(point.fer, 0.1);
}

TEST(ComplexityExperiment, SeedIdenticalWorkloads) {
  channel::RayleighChannel ch(4, 2);
  link::LinkScenario scenario;
  scenario.frame.qam_order = 16;
  scenario.frame.payload_bytes = 100;
  scenario.snr_db = 18.0;
  const auto points = measure_complexity(
      test_engine(), ch, scenario,
      {{"Geosphere", DetectorSpec::parse("geosphere")},
       {"Geosphere-again", DetectorSpec::parse("geosphere")},
       {"ETH-SD", DetectorSpec::parse("eth-sd")}},
      10, 42);
  ASSERT_EQ(points.size(), 3u);
  // Identical detector on identical seed: identical counters and FER.
  EXPECT_DOUBLE_EQ(points[0].avg_ped_per_subcarrier, points[1].avg_ped_per_subcarrier);
  EXPECT_DOUBLE_EQ(points[0].fer, points[1].fer);
  // Different enumeration, same traversal: same nodes, same FER, more PEDs.
  EXPECT_DOUBLE_EQ(points[0].avg_visited_nodes, points[2].avg_visited_nodes);
  EXPECT_DOUBLE_EQ(points[0].fer, points[2].fer);
  EXPECT_LT(points[0].avg_ped_per_subcarrier, points[2].avg_ped_per_subcarrier);
}

}  // namespace
}  // namespace geosphere::sim
